"""Kernel benchmark: columnar vs scalar hot paths, with a JSON artifact.

Times the three paths the columnar kernel layer accelerates —

* ``prob_skyline_sfs`` — the Eq. 3 local skyline computed at
  ``prepare()`` time,
* ``probe`` — the Eq. 9 foreign-factor window query on an un-indexed
  site (one call per broadcast per site), and
* a full DSUD run over un-indexed sites —

each measured with the vectorized kernels *and* the scalar reference in
the same process, and writes the comparison to ``BENCH_kernels.json``
at the repository root (override with ``--out``).  CI runs this
non-blocking and uploads the JSON, so every PR leaves a comparable
record; ``scripts``/reviewers diff the ``speedup`` fields across
commits.

Run it::

    PYTHONPATH=src python -m repro.bench.kernels            # full (n=20k)
    PYTHONPATH=src python -m repro.bench.kernels --quick    # n=2k only
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from typing import Callable, Dict, List

from ..core.kernels import ColumnStore
from ..core.kernels import prob_skyline_sfs as columnar_sfs
from ..core.prob_skyline import prob_skyline_sfs as scalar_sfs
from ..core.tuples import UncertainTuple
from ..distributed.dsud import DSUD
from ..distributed.query import build_sites
from ..distributed.site import SiteConfig

__all__ = ["run_kernel_bench", "main"]

Q = 0.3
PROBES = 64
SCALE_SMALL = {"name": "small", "n": 2_000, "d": 4, "repeats": 3}
SCALE_LARGE = {"name": "large", "n": 20_000, "d": 4, "repeats": 1}
DSUD_SCALES = ({"name": "small", "n": 1_000, "sites": 4}, {"name": "large", "n": 4_000, "sites": 4})


def _make_database(n: int, d: int, seed: int, start_key: int = 0) -> List[UncertainTuple]:
    rng = random.Random(seed)
    return [
        UncertainTuple(
            start_key + i,
            tuple(rng.random() for _ in range(d)),
            rng.random() * 0.99 + 0.01,
        )
        for i in range(n)
    ]


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_sfs(scale: Dict) -> Dict:
    db = _make_database(scale["n"], scale["d"], seed=101)
    vec = _best_of(lambda: columnar_sfs(db, Q), scale["repeats"])
    ref = _best_of(lambda: scalar_sfs(db, Q), scale["repeats"])
    return {
        "benchmark": "prob_skyline_sfs",
        "scale": scale["name"],
        "n": scale["n"],
        "d": scale["d"],
        "threshold": Q,
        "scalar_seconds": ref,
        "vectorized_seconds": vec,
        "speedup": ref / vec if vec > 0 else float("inf"),
    }


def _bench_probe(scale: Dict) -> Dict:
    db = _make_database(scale["n"], scale["d"], seed=202)
    probes = _make_database(PROBES, scale["d"], seed=303, start_key=10**6)
    store = ColumnStore.from_tuples(db)

    def vectorized() -> None:
        for t in probes:
            store.dominator_product(store.project_point(t), exclude_key=t.key)

    from ..core.probability import non_occurrence_product

    def scalar() -> None:
        for t in probes:
            non_occurrence_product(t, db)

    vec = _best_of(vectorized, scale["repeats"])
    ref = _best_of(scalar, scale["repeats"])
    return {
        "benchmark": "probe",
        "scale": scale["name"],
        "n": scale["n"],
        "d": scale["d"],
        "probes": PROBES,
        "scalar_seconds": ref,
        "vectorized_seconds": vec,
        "speedup": ref / vec if vec > 0 else float("inf"),
    }


def _bench_dsud(scale: Dict) -> Dict:
    d = 3
    db = _make_database(scale["n"], d, seed=404)
    partitions = [db[i :: scale["sites"]] for i in range(scale["sites"])]

    def run(vectorized: bool):
        sites = build_sites(
            partitions,
            site_config=SiteConfig(use_index=False, vectorized=vectorized),
        )
        return DSUD(sites, Q).run()

    start = time.perf_counter()
    vec_result = run(vectorized=True)
    vec = time.perf_counter() - start
    start = time.perf_counter()
    ref_result = run(vectorized=False)
    ref = time.perf_counter() - start
    assert vec_result.answer.agrees_with(ref_result.answer, tol=1e-9), (
        "vectorized and scalar DSUD answers diverged"
    )
    return {
        "benchmark": "dsud_full_run",
        "scale": scale["name"],
        "n": scale["n"],
        "d": d,
        "sites": scale["sites"],
        "threshold": Q,
        "results": len(vec_result.answer),
        "scalar_seconds": ref,
        "vectorized_seconds": vec,
        "speedup": ref / vec if vec > 0 else float("inf"),
    }


def run_kernel_bench(quick: bool = False) -> Dict:
    """Run every kernel benchmark; returns the JSON-ready document."""
    scales = [SCALE_SMALL] if quick else [SCALE_SMALL, SCALE_LARGE]
    results = []
    for scale in scales:
        results.append(_bench_sfs(scale))
        results.append(_bench_probe(scale))
    for scale in DSUD_SCALES[:1] if quick else DSUD_SCALES:
        results.append(_bench_dsud(scale))
    return {
        "artifact": "BENCH_kernels",
        "generated_by": "python -m repro.bench.kernels",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "threshold": Q,
        "quick": quick,
        "results": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.kernels",
        description="Benchmark the columnar kernels against the scalar reference.",
    )
    parser.add_argument(
        "--out",
        default="BENCH_kernels.json",
        help="output path (default: BENCH_kernels.json in the cwd)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small scale only (CI smoke; the full run uses n=20k)",
    )
    args = parser.parse_args(argv)
    doc = run_kernel_bench(quick=args.quick)
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    for row in doc["results"]:
        print(
            f"{row['benchmark']:18s} {row['scale']:6s} n={row['n']:<6d} "
            f"scalar {row['scalar_seconds']:8.3f}s  "
            f"vectorized {row['vectorized_seconds']:8.3f}s  "
            f"speedup {row['speedup']:6.1f}x"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Kernel benchmark: columnar vs scalar hot paths, with a JSON artifact.

Times the paths the kernel layers accelerate —

* ``prob_skyline_sfs`` — the Eq. 3 local skyline computed at
  ``prepare()`` time,
* ``probe`` — the Eq. 9 foreign-factor window query on an un-indexed
  site (one call per broadcast per site),
* a full DSUD run over un-indexed sites, and
* ``all_probs_table`` — the output-sensitive full P_sky table
  (:mod:`repro.core.partition_index`) against the flat vectorized
  O(n²) fill, at scales up to n=10⁶ backed by the memory-mapped
  column store (:mod:`repro.data.io`) —

and writes the comparison to ``BENCH_kernels.json`` at the repository
root (override with ``--out``).  CI runs this non-blocking and uploads
the JSON, so every PR leaves a comparable record; ``scripts``/reviewers
diff the ``speedup`` fields across commits.

Every known (benchmark, scale) row appears in **every** run: scales a
flag combination does not execute are emitted as ``status: "skipped"``
marker rows (with the flag that enables them), never silently omitted
— so two artifacts always have the same row set and a diff can't
accidentally compare across mismatched scale sets.

The table rows report ``table_build_seconds`` (the one-off product
pass) separately from ``query_seconds`` (the per-query table read:
filter + sort) and ``probe_seconds`` — the build is standing-state
cost, the reads are what a query pays.  The vectorized baseline at
n≥100k is measured over a fixed probe sample and scaled linearly
(``vectorized_extrapolated: true``); per-probe cost of the flat kernel
is independent across probes, and the full fill at n=10⁶ would run for
days.

Run it::

    PYTHONPATH=src python -m repro.bench.kernels             # n≤20k
    PYTHONPATH=src python -m repro.bench.kernels --quick     # n=2k only
    PYTHONPATH=src python -m repro.bench.kernels --large     # + n=100k
    PYTHONPATH=src python -m repro.bench.kernels --million   # + n=10⁶
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..core.kernels import ColumnStore
from ..core.kernels import prob_skyline_sfs as columnar_sfs
from ..core.partition_index import PartitionIndex
from ..core.prob_skyline import prob_skyline_sfs as scalar_sfs
from ..core.tuples import UncertainTuple
from ..data.io import open_columns, write_columns
from ..distributed.dsud import DSUD
from ..distributed.query import build_sites
from ..distributed.site import SiteConfig

__all__ = ["run_kernel_bench", "expected_rows", "main"]

Q = 0.3
PROBES = 64
SCALE_SMALL = {"name": "small", "n": 2_000, "d": 4, "repeats": 3}
SCALE_LARGE = {"name": "large", "n": 20_000, "d": 4, "repeats": 1}
DSUD_SCALES = ({"name": "small", "n": 1_000, "sites": 4}, {"name": "large", "n": 4_000, "sites": 4})

#: all_probs_table scales.  ``baseline_sample`` probes are measured on
#: the flat vectorized kernel; when it is smaller than ``n`` the full
#: fill time is extrapolated linearly (and marked so).  ``flag`` names
#: the CLI flag that enables the scale (``None`` = always run).
TABLE_SCALES = (
    {"name": "small", "n": 2_000, "d": 4, "baseline_sample": 2_000, "flag": None},
    {"name": "large", "n": 20_000, "d": 4, "baseline_sample": 4_096, "flag": None},
    {"name": "xlarge", "n": 100_000, "d": 4, "baseline_sample": 2_048, "flag": "--large"},
    {"name": "million", "n": 1_000_000, "d": 3, "baseline_sample": 0, "flag": "--million"},
)

#: Rows generated in chunks of this many tuples when writing the
#: memory-mapped column store (bounds resident memory during
#: construction, per the n=10⁶ requirement).
CHUNK_ROWS = 65_536

#: Scales at or above this row count run off a memory-mapped column
#: directory instead of in-RAM arrays.
MMAP_THRESHOLD = 100_000


def _make_database(n: int, d: int, seed: int, start_key: int = 0) -> List[UncertainTuple]:
    rng = random.Random(seed)
    return [
        UncertainTuple(
            start_key + i,
            tuple(rng.random() for _ in range(d)),
            rng.random() * 0.99 + 0.01,
        )
        for i in range(n)
    ]


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _skip_row(benchmark: str, scale: Dict, reason: str) -> Dict:
    return {
        "benchmark": benchmark,
        "scale": scale["name"],
        "n": scale["n"],
        "d": scale.get("d", 3),
        "status": "skipped",
        "reason": reason,
    }


def _bench_sfs(scale: Dict) -> Dict:
    db = _make_database(scale["n"], scale["d"], seed=101)
    vec = _best_of(lambda: columnar_sfs(db, Q), scale["repeats"])
    ref = _best_of(lambda: scalar_sfs(db, Q), scale["repeats"])
    return {
        "benchmark": "prob_skyline_sfs",
        "scale": scale["name"],
        "n": scale["n"],
        "d": scale["d"],
        "status": "ok",
        "threshold": Q,
        "scalar_seconds": ref,
        "vectorized_seconds": vec,
        "speedup": ref / vec if vec > 0 else float("inf"),
    }


def _bench_probe(scale: Dict) -> Dict:
    db = _make_database(scale["n"], scale["d"], seed=202)
    probes = _make_database(PROBES, scale["d"], seed=303, start_key=10**6)
    store = ColumnStore.from_tuples(db)

    def vectorized() -> None:
        for t in probes:
            store.dominator_product(store.project_point(t), exclude_key=t.key)

    from ..core.probability import non_occurrence_product

    def scalar() -> None:
        for t in probes:
            non_occurrence_product(t, db)

    vec = _best_of(vectorized, scale["repeats"])
    ref = _best_of(scalar, scale["repeats"])
    return {
        "benchmark": "probe",
        "scale": scale["name"],
        "n": scale["n"],
        "d": scale["d"],
        "status": "ok",
        "probes": PROBES,
        "scalar_seconds": ref,
        "vectorized_seconds": vec,
        "speedup": ref / vec if vec > 0 else float("inf"),
    }


def _bench_dsud(scale: Dict) -> Dict:
    d = 3
    db = _make_database(scale["n"], d, seed=404)
    partitions = [db[i :: scale["sites"]] for i in range(scale["sites"])]

    def run(vectorized: bool):
        sites = build_sites(
            partitions,
            site_config=SiteConfig(use_index=False, vectorized=vectorized),
        )
        return DSUD(sites, Q).run()

    start = time.perf_counter()
    vec_result = run(vectorized=True)
    vec = time.perf_counter() - start
    start = time.perf_counter()
    ref_result = run(vectorized=False)
    ref = time.perf_counter() - start
    assert vec_result.answer.agrees_with(ref_result.answer, tol=1e-9), (
        "vectorized and scalar DSUD answers diverged"
    )
    return {
        "benchmark": "dsud_full_run",
        "scale": scale["name"],
        "n": scale["n"],
        "d": d,
        "status": "ok",
        "sites": scale["sites"],
        "threshold": Q,
        "results": len(vec_result.answer),
        "scalar_seconds": ref,
        "vectorized_seconds": vec,
        "speedup": ref / vec if vec > 0 else float("inf"),
    }


def _column_chunks(
    n: int, d: int, seed: int
) -> Iterator[Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]]:
    """Deterministic synthetic columns, one bounded chunk at a time."""
    rng = np.random.default_rng(seed)
    produced = 0
    while produced < n:
        c = min(CHUNK_ROWS, n - produced)
        yield rng.random((c, d)), rng.random(c) * 0.99 + 0.01, None
        produced += c


def _table_store(n: int, d: int, seed: int, workdir: Path) -> Tuple[ColumnStore, str]:
    """The scale's column store: memmap-backed at large n, in-RAM below."""
    if n >= MMAP_THRESHOLD:
        rel = workdir / f"rel_{n}_{d}"
        write_columns(rel, _column_chunks(n, d, seed), d)
        return open_columns(rel), "memmap"
    chunks = list(_column_chunks(n, d, seed))
    values = np.concatenate([c[0] for c in chunks])
    probs = np.concatenate([c[1] for c in chunks])
    return ColumnStore.from_arrays(values, probs), "inline"


def _bench_table(scale: Dict, workdir: Path) -> Dict:
    n, d = scale["n"], scale["d"]
    store, backing = _table_store(n, d, seed=505, workdir=workdir)

    start = time.perf_counter()
    index = PartitionIndex.build(store)
    index.refresh()
    build_seconds = time.perf_counter() - start

    def query() -> np.ndarray:
        psky = index.p_sky()
        rows = np.nonzero(index.alive & (psky >= Q))[0]
        return rows[np.argsort(-psky[rows], kind="stable")]

    start = time.perf_counter()
    qualified = query()
    query_seconds = time.perf_counter() - start

    probe_rng = np.random.default_rng(606)
    probe_points = probe_rng.random((PROBES, d))
    start = time.perf_counter()
    for p in probe_points:
        index.dominator_product(p)
    probe_seconds = time.perf_counter() - start

    row = {
        "benchmark": "all_probs_table",
        "scale": scale["name"],
        "n": n,
        "d": d,
        "status": "ok",
        "threshold": Q,
        "store": backing,
        "cells": index.cell_count,
        "cells_per_dim": index.cells_per_dim,
        "qualified": int(qualified.size),
        "table_build_seconds": build_seconds,
        "query_seconds": query_seconds,
        "probe_seconds": probe_seconds,
    }

    sample = min(int(scale["baseline_sample"]), n)
    if sample <= 0:
        row["vectorized_fill_seconds"] = None
        row["vectorized_skipped"] = "O(n^2) fill infeasible at this scale"
        return row

    # The flat baseline: fill the same table with the O(n²) vectorized
    # kernel.  Per-probe cost is independent across probes (identical
    # blocked broadcasts), so a sampled measurement scales linearly.
    sample_points = np.asarray(store.values[:sample], dtype=np.float64)
    sample_keys = store.keys[:sample]
    start = time.perf_counter()
    baseline = store.dominator_products(
        sample_points, exclude_keys=[int(k) for k in sample_keys]
    )
    sample_seconds = time.perf_counter() - start
    fill_seconds = sample_seconds * (n / sample)

    table = index.all_probabilities()
    max_diff = float(np.max(np.abs(table[:sample] - baseline))) if sample else 0.0
    if max_diff > 1e-9:
        raise AssertionError(
            f"partitioned table diverged from the vectorized kernel "
            f"(max abs diff {max_diff:.3e} at scale {scale['name']})"
        )

    row.update(
        {
            "vectorized_probes_sampled": sample,
            "vectorized_sample_seconds": sample_seconds,
            "vectorized_extrapolated": sample < n,
            "vectorized_fill_seconds": fill_seconds,
            "speedup_vs_vectorized": (
                fill_seconds / build_seconds if build_seconds > 0 else float("inf")
            ),
            "max_abs_difference": max_diff,
        }
    )
    return row


def expected_rows() -> List[Tuple[str, str]]:
    """Every (benchmark, scale) row a run emits, regardless of flags.

    The schema contract ``benchmarks/test_kernels_regression.py`` pins:
    scales outside a flag set appear as ``status: "skipped"`` markers,
    so artifacts from different flag combinations stay diffable.
    """
    rows: List[Tuple[str, str]] = []
    for scale in (SCALE_SMALL, SCALE_LARGE):
        rows.append(("prob_skyline_sfs", scale["name"]))
        rows.append(("probe", scale["name"]))
    for dscale in DSUD_SCALES:
        rows.append(("dsud_full_run", dscale["name"]))
    for tscale in TABLE_SCALES:
        rows.append(("all_probs_table", tscale["name"]))
    return rows


def run_kernel_bench(
    quick: bool = False, large: bool = False, million: bool = False
) -> Dict:
    """Run every kernel benchmark; returns the JSON-ready document.

    ``quick`` restricts to the small scales; ``large`` adds n=100k and
    ``million`` additionally n=10⁶ to the table benchmark.  Scales not
    run are emitted as ``status: "skipped"`` rows.
    """
    results = []
    for scale in (SCALE_SMALL, SCALE_LARGE):
        if quick and scale is not SCALE_SMALL:
            results.append(_skip_row("prob_skyline_sfs", scale, "skipped by --quick"))
            results.append(_skip_row("probe", scale, "skipped by --quick"))
            continue
        results.append(_bench_sfs(scale))
        results.append(_bench_probe(scale))
    for dscale in DSUD_SCALES:
        if quick and dscale is not DSUD_SCALES[0]:
            results.append(_skip_row("dsud_full_run", dscale, "skipped by --quick"))
            continue
        results.append(_bench_dsud(dscale))
    with tempfile.TemporaryDirectory(prefix="bench_columns_") as tmp:
        workdir = Path(tmp)
        for tscale in TABLE_SCALES:
            flag = tscale["flag"]
            if quick and tscale["name"] != "small":
                results.append(_skip_row("all_probs_table", tscale, "skipped by --quick"))
            elif flag == "--large" and not (large or million):
                results.append(_skip_row("all_probs_table", tscale, "requires --large"))
            elif flag == "--million" and not million:
                results.append(_skip_row("all_probs_table", tscale, "requires --million"))
            else:
                results.append(_bench_table(tscale, workdir))
    emitted = [(r["benchmark"], r["scale"]) for r in results]
    assert emitted == expected_rows(), "benchmark row set drifted from expected_rows()"
    return {
        "artifact": "BENCH_kernels",
        "generated_by": "python -m repro.bench.kernels",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "threshold": Q,
        "quick": quick,
        "large": large or million,
        "million": million,
        "results": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.kernels",
        description="Benchmark the columnar kernels against the scalar reference.",
    )
    parser.add_argument(
        "--out",
        default="BENCH_kernels.json",
        help="output path (default: BENCH_kernels.json in the cwd)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small scales only (CI smoke; skipped scales emit marker rows)",
    )
    parser.add_argument(
        "--large",
        action="store_true",
        help="add the n=100k all-probabilities table scale",
    )
    parser.add_argument(
        "--million",
        action="store_true",
        help="add the n=100k and n=10^6 table scales (build takes minutes)",
    )
    args = parser.parse_args(argv)
    doc = run_kernel_bench(quick=args.quick, large=args.large, million=args.million)
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    for row in doc["results"]:
        if row.get("status") == "skipped":
            print(f"{row['benchmark']:18s} {row['scale']:7s} skipped ({row['reason']})")
        elif row["benchmark"] == "all_probs_table":
            base = row.get("vectorized_fill_seconds")
            base_txt = (
                f"vectorized-fill {base:9.1f}s "
                f"({'extrapolated' if row.get('vectorized_extrapolated') else 'measured'})  "
                f"speedup {row['speedup_vs_vectorized']:7.1f}x"
                if base is not None
                else "vectorized-fill skipped"
            )
            print(
                f"{row['benchmark']:18s} {row['scale']:7s} n={row['n']:<8d} "
                f"build {row['table_build_seconds']:8.2f}s  "
                f"query {row['query_seconds']:7.4f}s  {base_txt}"
            )
        else:
            print(
                f"{row['benchmark']:18s} {row['scale']:7s} n={row['n']:<8d} "
                f"scalar {row['scalar_seconds']:8.3f}s  "
                f"vectorized {row['vectorized_seconds']:8.3f}s  "
                f"speedup {row['speedup']:6.1f}x"
            )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

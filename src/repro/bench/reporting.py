"""Plain-text rendering of experiment results.

The paper shows line plots; a terminal reproduction prints the same
series as aligned tables, one block per panel, so "who wins, by what
factor, where the lines cross" can be read straight off.
"""

from __future__ import annotations

from typing import List

from .harness import FigureResult, Series

__all__ = ["render_figure", "print_figure", "downsample"]


def downsample(series: Series, max_points: int = 12) -> Series:
    """Thin a long series (progressiveness timelines) for printing.

    Keeps the first and last point and an even spread in between.
    """
    n = len(series.x)
    if n <= max_points:
        return series
    idx = sorted({round(i * (n - 1) / (max_points - 1)) for i in range(max_points)})
    return Series(series.label, [series.x[i] for i in idx], [series.y[i] for i in idx])


def _format_value(v) -> str:
    if isinstance(v, float):
        if v != 0 and (abs(v) < 0.01 or abs(v) >= 1e6):
            return f"{v:.3g}"
        return f"{v:,.2f}".rstrip("0").rstrip(".")
    return str(v)


def render_figure(figure: FigureResult, max_points: int = 12) -> str:
    """Render one figure's panels as aligned text tables."""
    lines: List[str] = []
    lines.append(f"=== {figure.figure}: {figure.title} ===")
    for note in figure.notes:
        lines.append(f"    note: {note}")
    for panel_name, series_list in figure.panels.items():
        lines.append("")
        lines.append(f"-- panel {panel_name} --")
        thinned = [downsample(s, max_points) for s in series_list]
        xs: List = []
        for s in thinned:
            for x in s.x:
                if x not in xs:
                    xs.append(x)
        header = [figure.x_label] + [s.label for s in thinned]
        rows = [header]
        for x in xs:
            row = [_format_value(x)]
            for s in thinned:
                if x in s.x:
                    row.append(_format_value(s.y[s.x.index(x)]))
                else:
                    row.append("-")
            rows.append(row)
        widths = [max(len(r[c]) for r in rows) for c in range(len(header))]
        for i, row in enumerate(rows):
            lines.append("  " + "  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
            if i == 0:
                lines.append("  " + "  ".join("-" * w for w in widths))
    return "\n".join(lines)


def print_figure(figure: FigureResult, max_points: int = 12) -> None:
    print(render_figure(figure, max_points=max_points))

"""Replication benchmark: what exact failover costs versus degrading.

Under an identical seeded single-site crash, runs the progressive
algorithms three ways —

* **fault-free** — the reference answer and its §3.2 bandwidth,
* **rf=1 degraded** — the pre-replication behaviour: the query
  finishes on Corollary-1 upper bounds and reports which tuples are
  inexact,
* **rf=2 failover** — a buddy replica is promoted mid-query and the
  answer stays exact —

and writes the comparison to ``BENCH_replica.json`` at the repository
root (override with ``--out``).  The interesting read is the *price of
exactness*: the failover run's extra query tuples (feedback replay)
plus the standing provisioning cost (one partition copy per replica,
amortised across every query the replica ever serves).  All bandwidth
numbers are deterministic message-ledger reads, not timings, so the
artifact diffs cleanly across commits; CI uploads it non-blocking.

Run it::

    PYTHONPATH=src python -m repro.bench.replica            # full
    PYTHONPATH=src python -m repro.bench.replica --quick    # small scale
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
from typing import Dict, List, Optional

from ..core.tuples import UncertainTuple
from ..distributed.query import build_sites, distributed_skyline
from ..fault.retry import RetryPolicy
from ..fault.schedule import FaultSchedule
from ..replica.manager import ReplicaManager

__all__ = ["run_replica_bench", "main"]

Q = 0.3
VICTIM = 1
CRASH_AT = 5
SCALES = (
    {"name": "small", "n": 400, "d": 3, "sites": 4},
    {"name": "large", "n": 2_000, "d": 3, "sites": 8},
)


def _make_database(n: int, d: int, seed: int) -> List[UncertainTuple]:
    rng = random.Random(seed)
    return [
        UncertainTuple(
            i, tuple(rng.random() for _ in range(d)), rng.random() * 0.99 + 0.01
        )
        for i in range(n)
    ]


def _schedule() -> FaultSchedule:
    return FaultSchedule(seed=0).crash(VICTIM, at_call=CRASH_AT)


def _retries() -> RetryPolicy:
    return RetryPolicy(max_attempts=2, base_backoff=1e-4, max_backoff=1e-3)


def _row(scale: Dict, algorithm: str, mode: str, result, extra: Optional[Dict] = None) -> Dict:
    coverage = result.coverage
    row = {
        "benchmark": "replica_failover",
        "scale": scale["name"],
        "algorithm": algorithm,
        "mode": mode,
        "n": scale["n"],
        "sites": scale["sites"],
        "threshold": Q,
        "results": result.result_count,
        "tuples_transmitted": result.stats.tuples_transmitted,
        "messages": result.stats.messages,
        "rounds": result.stats.rounds,
        "failovers": result.stats.failovers,
        "degraded_tuples": len(coverage.degraded) if coverage else 0,
        "exact": bool(coverage.complete) if coverage else True,
    }
    if extra:
        row.update(extra)
    return row


def run_replica_bench(quick: bool = False) -> Dict:
    """Run the rf=1 vs rf=2 chaos comparison; returns the JSON document."""
    results = []
    for scale in SCALES[:1] if quick else SCALES:
        db = _make_database(scale["n"], scale["d"], seed=909)
        partitions = [db[i :: scale["sites"]] for i in range(scale["sites"])]
        for algorithm in ("dsud", "edsud"):
            clean = distributed_skyline(partitions, Q, algorithm=algorithm)
            results.append(_row(scale, algorithm, "fault-free", clean))

            degraded = distributed_skyline(
                partitions, Q, algorithm=algorithm,
                fault_schedule=_schedule(), retry_policy=_retries(),
            )
            results.append(_row(scale, algorithm, "rf1-degraded", degraded))

            # Pre-build the manager so the standing provisioning cost
            # is reported next to the query cost it amortises over.
            manager = ReplicaManager(build_sites(partitions), 2)
            manager.ensure_provisioned()
            provisioning = manager.stats.tuples_transmitted
            replicated = distributed_skyline(
                partitions, Q, algorithm=algorithm,
                fault_schedule=_schedule(), retry_policy=_retries(),
                replication_factor=2,
            )
            clean_keys = [(m.key, m.probability) for m in clean.answer]
            got_keys = [(m.key, m.probability) for m in replicated.answer]
            results.append(
                _row(
                    scale, algorithm, "rf2-failover", replicated,
                    extra={
                        "provisioning_tuples": provisioning,
                        "matches_fault_free": got_keys == clean_keys,
                        "failover_overhead_tuples": (
                            replicated.stats.tuples_transmitted
                            - clean.stats.tuples_transmitted
                        ),
                    },
                )
            )
    return {
        "artifact": "BENCH_replica",
        "generated_by": "python -m repro.bench.replica",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "threshold": Q,
        "crash": {"site": VICTIM, "at_call": CRASH_AT},
        "quick": quick,
        "results": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.replica",
        description="Compare rf=1 degraded queries against rf=2 exact failover.",
    )
    parser.add_argument(
        "--out",
        default="BENCH_replica.json",
        help="output path (default: BENCH_replica.json in the cwd)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="small scale only (CI smoke)"
    )
    args = parser.parse_args(argv)
    doc = run_replica_bench(quick=args.quick)
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    for row in doc["results"]:
        exact = "exact" if row["exact"] else f"degraded({row['degraded_tuples']})"
        print(
            f"{row['algorithm']:6s} {row['scale']:6s} {row['mode']:13s} "
            f"tuples {row['tuples_transmitted']:6d}  msgs {row['messages']:6d}  "
            f"results {row['results']:4d}  {exact}"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Continuous-query bench: notification latency and edge suppression.

Drives the :mod:`repro.stream` subsystem end-to-end through the serving
layer — a :class:`~repro.serve.SkylineService` with a stream plane,
standing queries subscribed, a seeded
:func:`~repro.data.workload.make_synthetic_stream` schedule replayed
into it — and measures, per window kind:

* **notification latency** — wall-clock from the publish call to the
  last subscriber receiving its delta batch (p50/p95/p99 over epochs),
* **suppressed vs shipped** — candidate tuples the edge pre-filter
  actually uplinked versus the naive-forwarding baseline, which ships
  every arrival to the coordinator (plus the replication cost the
  incremental protocol pays, reported separately and honestly),
* **exactness** — at every measured epoch, the standing result of a
  checked query is compared bit-for-bit against a fresh
  :func:`~repro.distributed.query.distributed_skyline` run over the
  live windows; any mismatch fails the bench.

Results land in ``BENCH_stream.json`` at the repository root (override
with ``--out``).  Latencies are wall-clock — the artifact is a
trajectory, not a cross-machine diff; the suppression ratios and the
exactness verdicts are deterministic.

Run it::

    PYTHONPATH=src python -m repro.bench.stream            # full
    PYTHONPATH=src python -m repro.bench.stream --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import sys
import time
from typing import Dict, List, Optional, Sequence

from ..core.dominance import Preference
from ..data.workload import StreamArrival, make_synthetic_stream
from ..distributed.query import distributed_skyline
from ..serve import AdmissionPolicy, SkylineService
from ..stream import StandingQuery, make_window
from ..stream.site import streaming_site_config

__all__ = ["run_stream_bench", "main"]

SEED = 811
WINDOW_KINDS = ("count", "sliding-time", "tumbling-time")
FULL = {"n": 1_500, "d": 3, "sites": 4, "epoch_every": 50, "window": 250}
QUICK = {"n": 300, "d": 3, "sites": 3, "epoch_every": 30, "window": 90}
#: Exactness is checked every k-th epoch (fresh runs are the expensive
#: part of the bench, not the subsystem under test).
EXACTNESS_EVERY = 2


def _percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile; 0.0 on an empty series."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _window_size(kind: str, scale: Dict[str, int], arrivals: List[StreamArrival]) -> float:
    if kind == "count":
        return float(scale["window"])
    # Time windows: span sized so the window holds roughly the same
    # number of live tuples as the count variant does.
    mean_gap = arrivals[-1].stamp / len(arrivals)
    return scale["window"] * mean_gap


def _standing_queries(d: int) -> List[StandingQuery]:
    return [
        StandingQuery(threshold=0.4),
        StandingQuery(threshold=0.3, preference=Preference(subspace=(0, 1))),
        StandingQuery(threshold=0.25, limit=8),
    ]


async def _one_kind(
    kind: str, scale: Dict[str, int], arrivals: List[StreamArrival]
) -> Dict[str, object]:
    size = _window_size(kind, scale, arrivals)
    windows = [make_window(kind, size) for _ in range(scale["sites"])]
    notify_latencies: List[float] = []
    exact_checks = 0
    mismatches = 0
    async with SkylineService(
        stream_windows=windows,
        auto_publish=False,
        policy=AdmissionPolicy(max_subscriptions=8),
    ) as service:
        sessions = [
            await service.subscribe(query) for query in _standing_queries(scale["d"])
        ]
        checked = sessions[0]
        epochs = 0
        for i, arrival in enumerate(arrivals):
            service.ingest(arrival.site_id, arrival.tuple, arrival.stamp)
            if (i + 1) % scale["epoch_every"] == 0:
                start = time.perf_counter()
                await service.publish()
                for session in sessions:
                    while not session._queue.empty():
                        await session.next_batch()
                notify_latencies.append(time.perf_counter() - start)
                epochs += 1
                if epochs % EXACTNESS_EVERY == 0:
                    exact_checks += 1
                    stream = service.stream
                    assert stream is not None
                    got = stream.result(checked.query_id)
                    want = distributed_skyline(
                        stream.live_partitions(),
                        checked.query.threshold,
                        algorithm="edsud",
                        site_config=streaming_site_config(),
                    ).answer
                    if [(m.key, m.probability) for m in got.members] != [  # skylint: ignore[SKY301] bitwise on purpose: the exactness gate demands bit-identical answers
                        (m.key, m.probability) for m in want.members
                    ]:
                        mismatches += 1
        stream = service.stream
        assert stream is not None
        shipped = stream.candidates_shipped
        replicas = stream.replicas_shipped
        arrivals_total = stream.arrivals_total
        tuples_transmitted = stream.stats.tuples_transmitted
    naive = arrivals_total  # naive forwarding ships every arrival uplink
    return {
        "benchmark": "stream_continuous",
        "window_kind": kind,
        "window_size": size,
        "epochs": epochs,
        "subscriptions": len(sessions),
        "arrivals": arrivals_total,
        "candidates_shipped": shipped,
        "replicas_shipped": replicas,
        "tuples_transmitted": tuples_transmitted,
        "naive_uplink_tuples": naive,
        "suppressed_uplink_tuples": naive - shipped,
        "suppression_ratio": round(1.0 - shipped / naive, 4) if naive else 0.0,
        "notify_p50_ms": round(_percentile(notify_latencies, 0.50) * 1e3, 3),
        "notify_p95_ms": round(_percentile(notify_latencies, 0.95) * 1e3, 3),
        "notify_p99_ms": round(_percentile(notify_latencies, 0.99) * 1e3, 3),
        "exactness_checks": exact_checks,
        "exactness_mismatches": mismatches,
    }


def run_stream_bench(quick: bool = False) -> Dict[str, object]:
    """Run the per-window-kind sweep; returns the JSON document."""
    scale = QUICK if quick else FULL
    arrivals = make_synthetic_stream(
        n=scale["n"], d=scale["d"], sites=scale["sites"], seed=SEED
    )
    results = [
        asyncio.run(_one_kind(kind, scale, arrivals)) for kind in WINDOW_KINDS
    ]
    return {
        "artifact": "BENCH_stream",
        "generated_by": "python -m repro.bench.stream",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "seed": SEED,
        "scale": scale,
        "quick": quick,
        "results": results,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.stream",
        description="Bench the continuous-query subsystem.",
    )
    parser.add_argument(
        "--out",
        default="BENCH_stream.json",
        help="output path (default: BENCH_stream.json in the cwd)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="small scale only (CI smoke)"
    )
    args = parser.parse_args(argv)
    doc = run_stream_bench(quick=args.quick)
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    failures = 0
    for row in doc["results"]:
        print(
            f"{row['window_kind']:13s} epochs {row['epochs']:3d}  "
            f"uplink {row['candidates_shipped']:5d}/{row['naive_uplink_tuples']:5d} "
            f"(suppressed {row['suppression_ratio']:.1%})  "
            f"notify p50 {row['notify_p50_ms']:7.2f}ms p95 {row['notify_p95_ms']:7.2f}ms  "
            f"exact {row['exactness_checks'] - row['exactness_mismatches']}"
            f"/{row['exactness_checks']}"
        )
        if row["exactness_mismatches"]:
            failures += 1
        if row["candidates_shipped"] >= row["naive_uplink_tuples"]:
            print(
                f"FAILED: {row['window_kind']} shipped no fewer tuples than "
                f"naive forwarding"
            )
            failures += 1
    print(f"wrote {args.out}")
    if failures:
        print(f"FAILED: {failures} rows violated exactness or suppression")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

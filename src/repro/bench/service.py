"""Serving-layer load test: latency percentiles under arrival pressure.

Drives a :class:`~repro.serve.SkylineService` with a seed-deterministic
stochastic query mix (:func:`repro.data.workload.sample_query_mix` —
thresholds, algorithms, top-k limits, subspace preferences, plus a
chaos slice with private fault schedules) under two arrival shapes:

* **open loop** — Poisson arrivals at fixed offered rates; the
  backpressure path is exercised when the service cannot keep up,
* **closed loop** — ``k`` synchronous clients, each submitting its
  next query the moment the previous one completes (the CI smoke
  gate's shape: finite, fast, and failure-revealing),
* **remote closed loop** — the same clients against site servers in
  separate OS processes (:func:`~repro.net.sockets.host_sites_in_processes`)
  with a deterministic per-RPC service delay standing in for the WAN.
  Each point runs twice: ``overlap_steps=True`` (sessions' socket
  waits overlap under ``asyncio.gather``) versus the sync-stepped
  baseline (one session stepped at a time) — the makespan gap is the
  awaitable coordinator's headline number.

Each point reports p50/p95/p99 completion latency, p50 time-to-first-
result (the progressiveness promise under load), and achieved
throughput, to ``BENCH_service.json`` at the repository root (override
with ``--out``).  Latencies are wall-clock — this artifact is a
trajectory, not a cross-machine diff; CI uploads it non-blocking.

Run it::

    PYTHONPATH=src python -m repro.bench.service            # full
    PYTHONPATH=src python -m repro.bench.service --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import random
import sys
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

from ..core.dominance import Preference
from ..core.tuples import UncertainTuple
from ..data.workload import QueryDraw, sample_query_mix
from ..fault.retry import RetryPolicy
from ..fault.schedule import FaultSchedule
from ..serve import AdmissionPolicy, QuerySession, QuerySpec, SkylineService
from ..serve.session import SessionState

__all__ = ["run_service_bench", "main"]

SEED = 707
OPEN_LOOP_RATES = (25.0, 100.0)  # offered queries per second
CLOSED_LOOP_CLIENTS = (2, 8)
REMOTE_CLIENTS = 8
REMOTE_RPC_DELAY = 0.0015  # seconds per RPC: the deterministic WAN stand-in
REMOTE_QUERY_CAP = 24  # remote rounds are wire-priced; cap the mix
CHAOS_FRACTION = 0.15
FULL = {"n": 1_200, "d": 3, "sites": 6, "queries": 60}
QUICK = {"n": 300, "d": 3, "sites": 4, "queries": 16}


def _make_database(n: int, d: int, seed: int) -> List[UncertainTuple]:
    rng = random.Random(seed)
    return [
        UncertainTuple(
            i, tuple(rng.random() for _ in range(d)), rng.random() * 0.99 + 0.01
        )
        for i in range(n)
    ]


def _specs_for_mix(
    draws: Sequence[QueryDraw], sites: int, seed: int
) -> List[QuerySpec]:
    """Deterministically lift sampled draws into service specs.

    The chaos slice rides here (not in the data-layer sampler): a
    ``CHAOS_FRACTION`` of queries get a private seeded crash-and-return
    schedule plus a fast retry policy, so the bench also measures
    serving latency while some sessions run recovery machinery.
    """
    chaos_rng = random.Random(seed + 1)
    specs: List[QuerySpec] = []
    for draw in draws:
        preference = (
            Preference(subspace=draw.subspace) if draw.subspace else None
        )
        fault_schedule: Optional[FaultSchedule] = None
        retry_policy: Optional[RetryPolicy] = None
        if chaos_rng.random() < CHAOS_FRACTION:
            victim = chaos_rng.randrange(sites)
            fault_schedule = FaultSchedule(seed=chaos_rng.randrange(1 << 20)).crash(
                victim, at_call=8, until_call=24
            )
            retry_policy = RetryPolicy(
                max_attempts=2, base_backoff=1e-4, max_backoff=1e-3
            )
        specs.append(
            QuerySpec(
                threshold=draw.threshold,
                algorithm=draw.algorithm,
                preference=preference,
                limit=draw.limit,
                batch_size=draw.batch_size,
                fault_schedule=fault_schedule,
                retry_policy=retry_policy,
                tenant=draw.tenant,
            )
        )
    return specs


def _remote_specs(specs: Sequence[QuerySpec]) -> List[QuerySpec]:
    """Strip the in-process-only knobs for the remote points.

    Chaos schedules and client-side preferences assume in-process
    sites (remote servers fail for real and bake their preference at
    hosting time), so the remote mix keeps only the wire-expressible
    dimensions: threshold, algorithm, top-k, batching, tenant.
    """
    return [
        QuerySpec(
            threshold=spec.threshold,
            algorithm=spec.algorithm,
            limit=spec.limit,
            batch_size=spec.batch_size,
            tenant=spec.tenant,
        )
        for spec in specs[:REMOTE_QUERY_CAP]
    ]


def _percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile; 0.0 on an empty series."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


async def _open_loop(
    service: SkylineService, specs: Sequence[QuerySpec], rate: float, seed: int
) -> List[QuerySession]:
    rng = random.Random(seed)
    sessions: List[QuerySession] = []
    for spec in specs:
        await asyncio.sleep(rng.expovariate(rate))
        sessions.append(await service.submit(spec, wait=True))
    await service.drain()
    return sessions


async def _closed_loop(
    service: SkylineService, specs: Sequence[QuerySpec], clients: int
) -> List[QuerySession]:
    work: Deque[QuerySpec] = deque(specs)
    sessions: List[QuerySession] = []

    async def client() -> None:
        while work:
            spec = work.popleft()
            session = await service.submit(spec, wait=True)
            sessions.append(session)
            while not session.done:
                await asyncio.sleep(0)

    workers = [asyncio.ensure_future(client()) for _ in range(clients)]
    await asyncio.gather(*workers)
    await service.drain()
    return sessions


def _measure(
    label: str,
    mode: str,
    sessions: Sequence[QuerySession],
    elapsed: float,
    point: Dict[str, object],
) -> Dict[str, object]:
    finished = [s for s in sessions if s.state is SessionState.FINISHED]
    failed = [s for s in sessions if s.state is SessionState.FAILED]
    latencies = [s.latency for s in finished if s.latency is not None]
    first = [
        s.first_result_latency
        for s in finished
        if s.first_result_latency is not None
    ]
    row: Dict[str, object] = {
        "benchmark": "service_load",
        "label": label,
        "mode": mode,
        "queries": len(sessions),
        "finished": len(finished),
        "failed": len(failed),
        "aborted": sum(1 for s in sessions if s.state is SessionState.ABORTED),
        "elapsed_seconds": round(elapsed, 6),
        "throughput_qps": round(len(finished) / elapsed, 3) if elapsed else 0.0,
        "latency_p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "latency_p95_ms": round(_percentile(latencies, 0.95) * 1e3, 3),
        "latency_p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
        "first_result_p50_ms": round(_percentile(first, 0.50) * 1e3, 3),
        "tuples_transmitted": sum(s.transmitted_tuples for s in sessions),
    }
    row.update(point)
    return row


def run_service_bench(quick: bool = False) -> Dict[str, object]:
    """Run the open- and closed-loop sweeps; returns the JSON document."""
    scale = QUICK if quick else FULL
    db = _make_database(scale["n"], scale["d"], seed=SEED)
    partitions = [db[i :: scale["sites"]] for i in range(scale["sites"])]
    draws = sample_query_mix(
        scale["queries"],
        scale["d"],
        seed=SEED,
        tenants=("alpha", "beta"),
    )
    specs = _specs_for_mix(draws, scale["sites"], seed=SEED)
    policy = AdmissionPolicy(max_inflight=8, max_queued=scale["queries"])
    results: List[Dict[str, object]] = []

    async def one_point(mode: str, point_value: float) -> Dict[str, object]:
        async with SkylineService(partitions, policy=policy) as service:
            start = time.perf_counter()
            if mode == "open-loop":
                sessions = await _open_loop(
                    service, specs, rate=point_value, seed=SEED + 2
                )
                point: Dict[str, object] = {"offered_rate_qps": point_value}
            else:
                sessions = await _closed_loop(
                    service, specs, clients=int(point_value)
                )
                point = {"clients": int(point_value)}
            elapsed = time.perf_counter() - start
        return _measure(scale_label, mode, sessions, elapsed, point)

    async def remote_point(overlap: bool) -> Dict[str, object]:
        # A fresh cluster per row: neither variant inherits the other's
        # warmed skyline caches, so the makespan gap is scheduling, not
        # cache luck.
        from ..net.sockets import host_sites_in_processes

        remote = _remote_specs(specs)
        with host_sites_in_processes(
            partitions, rpc_delay=REMOTE_RPC_DELAY
        ) as cluster:
            async with SkylineService(
                remote_sites=cluster.addresses,
                policy=AdmissionPolicy(max_inflight=8, max_queued=len(remote)),
                overlap_steps=overlap,
            ) as service:
                start = time.perf_counter()
                sessions = await _closed_loop(
                    service, remote, clients=REMOTE_CLIENTS
                )
                elapsed = time.perf_counter() - start
        return _measure(
            scale_label,
            "remote-closed-loop",
            sessions,
            elapsed,
            {
                "clients": REMOTE_CLIENTS,
                "overlap_steps": overlap,
                "rpc_delay_s": REMOTE_RPC_DELAY,
            },
        )

    scale_label = "quick" if quick else "full"
    for rate in OPEN_LOOP_RATES:
        results.append(asyncio.run(one_point("open-loop", rate)))
    for clients in CLOSED_LOOP_CLIENTS:
        results.append(asyncio.run(one_point("closed-loop", float(clients))))
    # The distributed points: sync-stepped baseline first, then the
    # overlapping scheduler the async coordinator exists for.
    for overlap in (False, True):
        results.append(asyncio.run(remote_point(overlap)))
    return {
        "artifact": "BENCH_service",
        "generated_by": "python -m repro.bench.service",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "seed": SEED,
        "chaos_fraction": CHAOS_FRACTION,
        "scale": scale,
        "quick": quick,
        "results": results,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.service",
        description="Load-test the multi-query serving layer.",
    )
    parser.add_argument(
        "--out",
        default="BENCH_service.json",
        help="output path (default: BENCH_service.json in the cwd)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="small scale only (CI smoke)"
    )
    args = parser.parse_args(argv)
    doc = run_service_bench(quick=args.quick)
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    failures = 0
    for row in doc["results"]:
        point = (
            f"rate {row['offered_rate_qps']:6.1f}/s"
            if "offered_rate_qps" in row
            else f"clients {row['clients']:2d}"
        )
        if "overlap_steps" in row:
            point += " overlap" if row["overlap_steps"] else " serial "
        print(
            f"{row['mode']:11s} {point}  qps {row['throughput_qps']:8.2f}  "
            f"p50 {row['latency_p50_ms']:8.2f}ms  p95 {row['latency_p95_ms']:8.2f}ms  "
            f"p99 {row['latency_p99_ms']:8.2f}ms  "
            f"finished {row['finished']}/{row['queries']}"
        )
        failures += int(row["failed"])
        if row["finished"] != row["queries"]:
            failures += 1
    remote = {
        bool(row["overlap_steps"]): row
        for row in doc["results"]
        if row["mode"] == "remote-closed-loop"
    }
    if len(remote) == 2:
        serial = float(remote[False]["elapsed_seconds"])
        overlap = float(remote[True]["elapsed_seconds"])
        speedup = serial / overlap if overlap else 0.0
        print(
            f"remote makespan: overlap {overlap:.3f}s vs sync-stepped "
            f"{serial:.3f}s ({speedup:.2f}x)"
        )
    print(f"wrote {args.out}")
    if failures:
        print(f"FAILED: {failures} sessions did not finish cleanly")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Per-figure experiment drivers — one function per paper artifact.

Each ``run_figN`` regenerates the corresponding figure of §7 as a
:class:`~repro.bench.harness.FigureResult` whose series carry exactly
the quantities the paper plots (tuples transmitted, skyline counts,
progressiveness timelines, update response times).  Absolute numbers
differ from the paper — different hardware, different scale — but each
driver's docstring states the *shape* the paper reports, and
``EXPERIMENTS.md`` records how the measured shapes compare.

All drivers accept a :class:`Scale` so the same code serves the quick
CI configuration, the EXPERIMENTS.md configuration, and the paper's
full-size grid.
"""

from __future__ import annotations

import random
import time


from ..core.cardinality import (
    expected_feedback_tuples,
    expected_local_skyline_tuples,
    expected_skyline_cardinality,
)
from ..core.tuples import UncertainTuple
from ..data.workload import Workload, make_nyse_workload, make_synthetic_workload
from ..distributed.edsud import EDSUDConfig
from ..distributed.query import build_sites, distributed_skyline
from ..distributed.site import SiteConfig
from ..distributed.updates import IncrementalMaintainer, NaiveMaintainer
from .harness import FigureResult, Scale, Series, average_runs, measure

__all__ = [
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_fig14",
    "run_cost_model",
    "run_ablation_edsud",
    "run_ablation_site",
    "run_ablation_partition",
    "run_topk_curve",
    "run_ablation_synopsis",
    "ALL_FIGURES",
]

_SYNTH_DISTRIBUTIONS = ("independent", "anticorrelated")


def _synthetic_factory(
    distribution: str, n: int, d: int, sites: int, **kwargs
):
    def make(seed: int) -> Workload:
        return make_synthetic_workload(
            distribution=distribution, n=n, d=d, sites=sites, seed=seed, **kwargs
        )

    return make


def run_fig8(scale: Scale) -> FigureResult:
    """Fig. 8 — bandwidth vs dimensionality d (panels a/b: indep/anticorr).

    Paper shape: both algorithms grow with d (bigger skylines); e-DSUD
    stays well below DSUD; anticorrelated costs more than independent;
    e-DSUD lands within a small factor (~3×) of the Ceiling
    ``|SKY(H)| × m``.
    """
    fig = FigureResult(
        figure="fig8",
        title="Bandwidth vs dimensionality d",
        x_label="d",
        y_label="tuples transmitted",
    )
    for panel, distribution in zip(("a", "b"), _SYNTH_DISTRIBUTIONS):
        series = {
            name: Series(name, [], []) for name in ("DSUD", "e-DSUD", "Ceiling")
        }
        for d in scale.dim_values:
            totals = average_runs(
                _synthetic_factory(
                    distribution, scale.cardinality, d, scale.default_sites
                ),
                scale.default_threshold,
                algorithms=("dsud", "edsud"),
                repeats=scale.repeats,
            )
            series["DSUD"].append(d, totals["dsud"]["bandwidth"])
            series["e-DSUD"].append(d, totals["edsud"]["bandwidth"])
            series["Ceiling"].append(d, totals["edsud"]["ceiling"])
        fig.panels[f"{panel} ({distribution})"] = list(series.values())
    return fig


def run_fig9(scale: Scale) -> FigureResult:
    """Fig. 9 — bandwidth vs number of local sites m.

    Paper shape: both algorithms grow roughly linearly with m (each
    feedback costs m−1 deliveries); e-DSUD below DSUD throughout.
    """
    fig = FigureResult(
        figure="fig9",
        title="Bandwidth vs number of local sites m",
        x_label="m",
        y_label="tuples transmitted",
    )
    for panel, distribution in zip(("a", "b"), _SYNTH_DISTRIBUTIONS):
        series = {name: Series(name, [], []) for name in ("DSUD", "e-DSUD")}
        for m in scale.site_values:
            totals = average_runs(
                _synthetic_factory(
                    distribution, scale.cardinality, scale.default_dim, m
                ),
                scale.default_threshold,
                algorithms=("dsud", "edsud"),
                repeats=scale.repeats,
            )
            series["DSUD"].append(m, totals["dsud"]["bandwidth"])
            series["e-DSUD"].append(m, totals["edsud"]["bandwidth"])
        fig.panels[f"{panel} ({distribution})"] = list(series.values())
    return fig


def run_fig10(scale: Scale) -> FigureResult:
    """Fig. 10 — bandwidth vs probability threshold q.

    Paper shape: bandwidth falls steeply as q rises (fewer qualified
    tuples, stronger pruning); e-DSUD below DSUD at every q.
    """
    fig = FigureResult(
        figure="fig10",
        title="Bandwidth vs threshold q",
        x_label="q",
        y_label="tuples transmitted",
    )
    for panel, distribution in zip(("a", "b"), _SYNTH_DISTRIBUTIONS):
        series = {name: Series(name, [], []) for name in ("DSUD", "e-DSUD")}
        for q in scale.threshold_values:
            totals = average_runs(
                _synthetic_factory(
                    distribution,
                    scale.cardinality,
                    scale.default_dim,
                    scale.default_sites,
                ),
                q,
                algorithms=("dsud", "edsud"),
                repeats=scale.repeats,
            )
            series["DSUD"].append(q, totals["dsud"]["bandwidth"])
            series["e-DSUD"].append(q, totals["edsud"]["bandwidth"])
        fig.panels[f"{panel} ({distribution})"] = list(series.values())
    return fig


def run_fig11(scale: Scale) -> FigureResult:
    """Fig. 11 — the NYSE study (four panels).

    (a) bandwidth vs m and (b) bandwidth vs q with uniform
    probabilities mirror the synthetic trends; (c)/(d) sweep the
    Gaussian probability mean μ: bandwidth and |SKY(H)| rise towards
    μ = 0.5 and fall beyond it (dominated low-probability tuples fail
    q on one side, confident tuples qualify outright on the other),
    and (d) shows both algorithms returning identical counts.
    """
    fig = FigureResult(
        figure="fig11",
        title="NYSE: bandwidth vs m, q, and Gaussian mean",
        x_label="m / q / mu",
        y_label="tuples transmitted (a–c), skyline count (d)",
    )

    def nyse_factory(sites: int, kind: str = "uniform", mean: float = 0.5):
        def make(seed: int) -> Workload:
            return make_nyse_workload(
                n=scale.cardinality,
                sites=sites,
                probability_kind=kind,
                probability_mean=mean,
                seed=seed,
            )

        return make

    panel_a = {name: Series(name, [], []) for name in ("DSUD", "e-DSUD")}
    for m in scale.site_values:
        totals = average_runs(
            nyse_factory(m),
            scale.default_threshold,
            algorithms=("dsud", "edsud"),
            repeats=scale.repeats,
        )
        panel_a["DSUD"].append(m, totals["dsud"]["bandwidth"])
        panel_a["e-DSUD"].append(m, totals["edsud"]["bandwidth"])
    fig.panels["a (bandwidth vs m, uniform)"] = list(panel_a.values())

    panel_b = {name: Series(name, [], []) for name in ("DSUD", "e-DSUD")}
    for q in scale.threshold_values:
        totals = average_runs(
            nyse_factory(scale.default_sites),
            q,
            algorithms=("dsud", "edsud"),
            repeats=scale.repeats,
        )
        panel_b["DSUD"].append(q, totals["dsud"]["bandwidth"])
        panel_b["e-DSUD"].append(q, totals["edsud"]["bandwidth"])
    fig.panels["b (bandwidth vs q, uniform)"] = list(panel_b.values())

    panel_c = {name: Series(name, [], []) for name in ("DSUD", "e-DSUD")}
    panel_d = {name: Series(name, [], []) for name in ("DSUD", "e-DSUD")}
    for mu in scale.gaussian_means:
        totals = average_runs(
            nyse_factory(scale.default_sites, kind="gaussian", mean=mu),
            scale.default_threshold,
            algorithms=("dsud", "edsud"),
            repeats=scale.repeats,
        )
        panel_c["DSUD"].append(mu, totals["dsud"]["bandwidth"])
        panel_c["e-DSUD"].append(mu, totals["edsud"]["bandwidth"])
        panel_d["DSUD"].append(mu, totals["dsud"]["results"])
        panel_d["e-DSUD"].append(mu, totals["edsud"]["results"])
    fig.panels["c (bandwidth vs gaussian mean)"] = list(panel_c.values())
    fig.panels["d (skyline count vs gaussian mean)"] = list(panel_d.values())
    return fig


def _progress_panels(
    fig: FigureResult, label: str, workload: Workload, threshold: float
) -> None:
    """Fill one distribution's bandwidth- and CPU-progress panels."""
    bandwidth = []
    cpu = []
    for algo, name in (("dsud", "DSUD"), ("edsud", "e-DSUD")):
        result = measure(workload, threshold, algo)
        events = result.progress.events
        bandwidth.append(
            Series(name, [e.result_index for e in events], [e.tuples_transmitted for e in events])
        )
        cpu.append(
            Series(name, [e.result_index for e in events], [e.cpu_seconds for e in events])
        )
    fig.panels[f"bandwidth vs results ({label})"] = bandwidth
    fig.panels[f"cpu vs results ({label})"] = cpu


def run_fig12(scale: Scale) -> FigureResult:
    """Fig. 12 — progressiveness on synthetic data.

    Paper shape: both algorithms report their first result almost
    immediately; cumulative bandwidth grows roughly linearly with the
    results reported, with e-DSUD's line flatter than DSUD's (fewer
    tuples per additional result) on both distributions.
    """
    fig = FigureResult(
        figure="fig12",
        title="Progressiveness on synthetic data",
        x_label="results reported",
        y_label="cumulative tuples / cpu seconds",
    )
    for distribution in _SYNTH_DISTRIBUTIONS:
        workload = make_synthetic_workload(
            distribution=distribution,
            n=scale.cardinality,
            d=scale.default_dim,
            sites=scale.default_sites,
            seed=1000,
        )
        _progress_panels(fig, distribution, workload, scale.default_threshold)
    return fig


def run_fig13(scale: Scale) -> FigureResult:
    """Fig. 13 — progressiveness on NYSE (uniform and Gaussian probabilities).

    Paper shape: same qualitative behaviour as Fig. 12; the Gaussian
    assignment consumes less bandwidth and CPU than uniform because
    high-probability central tuples prune more per broadcast.
    """
    fig = FigureResult(
        figure="fig13",
        title="Progressiveness on NYSE",
        x_label="results reported",
        y_label="cumulative tuples / cpu seconds",
    )
    for kind in ("uniform", "gaussian"):
        workload = make_nyse_workload(
            n=scale.cardinality,
            sites=scale.default_sites,
            probability_kind=kind,
            probability_mean=0.5,
            seed=1000,
        )
        _progress_panels(fig, kind, workload, scale.default_threshold)
    return fig


def run_fig14(scale: Scale) -> FigureResult:
    """Fig. 14 — update maintenance response time vs update rate.

    Paper shape: both strategies are stable as the update rate grows;
    the incremental strategy responds much faster than naive
    recomputation, and anticorrelated data (more skyline members to
    maintain) costs more than independent.
    """
    fig = FigureResult(
        figure="fig14",
        title="Update response time vs update count",
        x_label="updates applied",
        y_label="response seconds (total for batch)",
    )
    for panel, distribution in zip(("a", "b"), _SYNTH_DISTRIBUTIONS):
        incremental = Series("Incremental", [], [])
        naive = Series("Naive", [], [])
        for count in scale.update_counts:
            workload = make_synthetic_workload(
                distribution=distribution,
                n=scale.cardinality,
                d=scale.default_dim,
                sites=scale.default_sites,
                seed=2000,
            )
            updates = _update_script(workload, count, seed=2000 + count)
            inc = IncrementalMaintainer(
                build_sites(workload.partitions, preference=workload.preference),
                scale.default_threshold,
                workload.preference,
            )
            incremental.append(count, _apply_updates(inc, updates))
            nv = NaiveMaintainer(
                build_sites(workload.partitions, preference=workload.preference),
                scale.default_threshold,
                workload.preference,
            )
            naive.append(count, _apply_updates(nv, updates))
        fig.panels[f"{panel} ({distribution})"] = [incremental, naive]
    return fig


def _update_script(workload: Workload, count: int, seed: int):
    """A reproducible mixed insert/delete script against a workload."""
    rng = random.Random(seed)
    dims = workload.dimensionality
    key = 10_000_000
    live = [list(p) for p in workload.partitions]
    script = []
    for _ in range(count):
        site_id = rng.randrange(workload.sites)
        if rng.random() < 0.5 and live[site_id]:
            victim = rng.choice(live[site_id])
            live[site_id].remove(victim)
            script.append(("delete", site_id, victim.key, None))
        else:
            t = UncertainTuple(
                key,
                tuple(rng.random() for _ in range(dims)),
                rng.random() * 0.99 + 0.01,
            )
            key += 1
            live[site_id].append(t)
            script.append(("insert", site_id, t.key, t))
    return script


def _apply_updates(maintainer, script) -> float:
    start = time.perf_counter()
    for op, site_id, key, t in script:
        if op == "insert":
            maintainer.insert(site_id, t)
        else:
            maintainer.delete(site_id, key)
    return time.perf_counter() - start


def run_cost_model(scale: Scale) -> FigureResult:
    """Eqs. 6–8 — the analytical feedback cost comparison of §4.

    Shape: ``N_back = (m−1)·H(d,N)`` exceeds ``N_local =
    (m−1)·H(d,N/m)`` for every m > 1, i.e. indiscriminate feedback is
    costlier than shipping all local skylines — the motivation for
    selective feedback.
    """
    fig = FigureResult(
        figure="eq6-8",
        title="Analytical feedback cost (Eqs. 6-8)",
        x_label="d",
        y_label="expected tuples",
    )
    h = Series("H(d, N)", [], [])
    back = Series("N_back", [], [])
    local = Series("N_local", [], [])
    m = scale.default_sites
    n = scale.cardinality
    for d in scale.dim_values:
        h.append(d, expected_skyline_cardinality(d, n))
        back.append(d, expected_feedback_tuples(d, n, m))
        local.append(d, expected_local_skyline_tuples(d, n, m))
    fig.panels[f"m={m}, N={n}"] = [h, back, local]
    return fig


def run_ablation_edsud(scale: Scale) -> FigureResult:
    """Ablation — which e-DSUD ingredient buys which share of the win.

    Compares full e-DSUD, no-server-expunge (the §5.3 example mode),
    no-eager-bound-refresh, the beyond-paper probe-factor reuse, and
    DSUD as the anchor, on bandwidth.
    """
    fig = FigureResult(
        figure="ablation-edsud",
        title="e-DSUD design ablation (bandwidth)",
        x_label="variant",
        y_label="tuples transmitted",
    )
    variants = {
        "DSUD": ("dsud", None),
        "e-DSUD (paper)": ("edsud", EDSUDConfig()),
        "e-DSUD no-expunge": ("edsud", EDSUDConfig(server_expunge=False)),
        "e-DSUD lazy-bounds": ("edsud", EDSUDConfig(eager_bound_refresh=False)),
        "e-DSUD reuse-factors": ("edsud", EDSUDConfig(reuse_probe_factors=True)),
    }
    for distribution in _SYNTH_DISTRIBUTIONS:
        series = Series(distribution, [], [])
        for label, (algo, config) in variants.items():
            total = 0.0
            for r in range(scale.repeats):
                workload = make_synthetic_workload(
                    distribution=distribution,
                    n=scale.cardinality,
                    d=scale.default_dim,
                    sites=scale.default_sites,
                    seed=3000 + r,
                )
                result = distributed_skyline(
                    workload.partitions,
                    scale.default_threshold,
                    algorithm=algo,
                    preference=workload.preference,
                    edsud_config=config,
                )
                total += result.bandwidth
            series.append(label, total / scale.repeats)
        fig.panels[distribution] = [series]
    return fig


def run_ablation_site(scale: Scale) -> FigureResult:
    """Ablation — site-side switches: feedback pruning and the PR-tree
    product aggregate.

    Disabling Local-Pruning shows its bandwidth contribution;
    disabling the stored non-occurrence product shows the §6.3 probe's
    extra node accesses (CPU-side, bandwidth unchanged).
    """
    fig = FigureResult(
        figure="ablation-site",
        title="Site-side ablations",
        x_label="variant",
        y_label="tuples transmitted / seconds",
    )
    configs = {
        "full": SiteConfig(),
        "no-feedback-pruning": SiteConfig(feedback_pruning=False),
        "no-product-aggregate": SiteConfig(store_products=False),
        "no-index": SiteConfig(use_index=False),
    }
    bandwidth = Series("bandwidth", [], [])
    seconds = Series("seconds", [], [])
    for label, config in configs.items():
        workload = make_synthetic_workload(
            n=scale.cardinality,
            d=scale.default_dim,
            sites=scale.default_sites,
            seed=4000,
        )
        start = time.perf_counter()
        result = measure(
            workload, scale.default_threshold, "edsud", site_config=config
        )
        bandwidth.append(label, result.bandwidth)
        seconds.append(label, time.perf_counter() - start)
    fig.panels["e-DSUD, independent"] = [bandwidth, seconds]
    return fig


def run_ablation_partition(scale: Scale) -> FigureResult:
    """Ablation — how the placement of tuples over sites moves bandwidth.

    The paper fixes uniform random placement; this sweep contrasts it
    with round-robin (equivalent in distribution), range partitioning
    (maximally skewed: one site owns the preferred corner), and
    angle-based partitioning (every wedge holds skyline members —
    Vlachou et al., the paper's ref. [21]).  Answers are identical by
    construction; only the bandwidth moves.
    """
    import random as _random

    from ..data.partition import (
        partition_angle,
        partition_range,
        partition_round_robin,
        partition_uniform,
    )

    fig = FigureResult(
        figure="ablation-partition",
        title="Partitioning-scheme ablation (bandwidth, e-DSUD)",
        x_label="scheme",
        y_label="tuples transmitted",
    )
    schemes = {
        "uniform": lambda ts, m, seed: partition_uniform(
            ts, m, rng=_random.Random(seed)
        ),
        "round-robin": lambda ts, m, seed: partition_round_robin(ts, m),
        "range": lambda ts, m, seed: partition_range(ts, m),
        "angle": lambda ts, m, seed: partition_angle(ts, m),
    }
    for distribution in _SYNTH_DISTRIBUTIONS:
        series = Series(distribution, [], [])
        for label, scheme in schemes.items():
            total = 0.0
            for r in range(scale.repeats):
                workload = make_synthetic_workload(
                    distribution=distribution,
                    n=scale.cardinality,
                    d=scale.default_dim,
                    sites=scale.default_sites,
                    seed=5000 + r,
                )
                partitions = scheme(
                    workload.global_database, scale.default_sites, 5000 + r
                )
                result = distributed_skyline(
                    partitions, scale.default_threshold, algorithm="edsud"
                )
                total += result.bandwidth
            series.append(label, total / scale.repeats)
        fig.panels[distribution] = [series]
    return fig


def run_topk_curve(scale: Scale) -> FigureResult:
    """Extension — bandwidth of the top-k early stop vs k.

    Shape: cost grows with k and meets the full query's bill once k
    reaches |SKY(H)|; small k costs a small fraction (progressiveness
    made actionable).
    """
    fig = FigureResult(
        figure="topk",
        title="Top-k early termination (bandwidth vs k, e-DSUD)",
        x_label="k",
        y_label="tuples transmitted",
    )
    for distribution in _SYNTH_DISTRIBUTIONS:
        series = Series(distribution, [], [])
        workload = make_synthetic_workload(
            distribution=distribution,
            n=scale.cardinality,
            d=scale.default_dim,
            sites=scale.default_sites,
            seed=6000,
        )
        full = distributed_skyline(
            workload.partitions, scale.default_threshold, algorithm="edsud"
        )
        ks = sorted({1, 2, 5, 10, max(1, full.result_count // 2), full.result_count})
        for k in ks:
            result = distributed_skyline(
                workload.partitions,
                scale.default_threshold,
                algorithm="edsud",
                limit=k,
            )
            series.append(k, result.bandwidth)
        series.append("full", full.bandwidth)
        fig.panels[distribution] = [series]
    return fig


def run_ablation_synopsis(scale: Scale) -> FigureResult:
    """Ablation — §5.2's rejected synopsis-based feedback, measured.

    Shape the paper predicts: shipping per-site histograms so the
    server can pick feedback by estimated prune count does not pay for
    itself — the synopsis traffic plus heuristic ordering loses to the
    zero-bandwidth Corollary-2 bound.
    """
    from ..distributed.query import build_sites
    from ..distributed.synopsis import SynopsisEDSUD
    from ..distributed.edsud import EDSUD

    fig = FigureResult(
        figure="ablation-synopsis",
        title="Synopsis feedback (rejected §5.2 design) vs e-DSUD",
        x_label="variant",
        y_label="tuples transmitted",
    )
    for distribution in _SYNTH_DISTRIBUTIONS:
        series = Series(distribution, [], [])
        totals = {"e-DSUD": 0.0, "synopsis (total)": 0.0, "synopsis (shipment)": 0.0}
        for r in range(scale.repeats):
            workload = make_synthetic_workload(
                distribution=distribution,
                n=scale.cardinality,
                d=scale.default_dim,
                sites=scale.default_sites,
                seed=7000 + r,
            )
            plain = EDSUD(
                build_sites(workload.partitions), scale.default_threshold
            ).run()
            synopsis = SynopsisEDSUD(
                build_sites(workload.partitions), scale.default_threshold
            ).run()
            totals["e-DSUD"] += plain.bandwidth
            totals["synopsis (total)"] += synopsis.bandwidth
            totals["synopsis (shipment)"] += synopsis.extra["synopsis_tuples"]
        for label, value in totals.items():
            series.append(label, value / scale.repeats)
        fig.panels[distribution] = [series]
    return fig


ALL_FIGURES = {
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "fig14": run_fig14,
    "cost-model": run_cost_model,
    "ablation-edsud": run_ablation_edsud,
    "ablation-site": run_ablation_site,
    "ablation-partition": run_ablation_partition,
    "topk": run_topk_curve,
    "ablation-synopsis": run_ablation_synopsis,
}

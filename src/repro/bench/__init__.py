"""Experiment harness regenerating every table and figure of §7."""

from .experiments import (
    ALL_FIGURES,
    run_ablation_edsud,
    run_ablation_partition,
    run_ablation_site,
    run_cost_model,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14,
)
from .harness import SCALES, FigureResult, Scale, Series, average_runs, measure
from .reporting import print_figure, render_figure

__all__ = [
    "Scale",
    "SCALES",
    "Series",
    "FigureResult",
    "measure",
    "average_runs",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_fig14",
    "run_cost_model",
    "run_ablation_edsud",
    "run_ablation_partition",
    "run_ablation_site",
    "ALL_FIGURES",
    "render_figure",
    "print_figure",
]

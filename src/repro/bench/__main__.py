"""CLI for regenerating paper figures: ``python -m repro.bench``.

Examples::

    python -m repro.bench --list
    python -m repro.bench fig8 fig10 --scale ci
    python -m repro.bench all --scale default --out results.txt
"""

from __future__ import annotations

import argparse
import sys
import time

from .experiments import ALL_FIGURES
from .harness import SCALES, enable_chaos
from .reporting import render_figure


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        default=["all"],
        help=f"figure ids ({', '.join(ALL_FIGURES)}) or 'all'",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="ci",
        help="experiment sizing (default: ci)",
    )
    parser.add_argument("--list", action="store_true", help="list figure ids and exit")
    parser.add_argument("--out", default=None, help="also append output to this file")
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="run progressive algorithms under a deterministic "
        "fail-then-recover fault plan (site 0), measuring the "
        "fault-tolerance machinery's overhead",
    )
    parser.add_argument(
        "--chaos-seed", type=int, default=0, help="fault-plan seed (with --chaos)"
    )
    args = parser.parse_args(argv)
    if args.chaos:
        enable_chaos(seed=args.chaos_seed)

    if args.list:
        for name, fn in ALL_FIGURES.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:16s} {doc}")
        return 0

    wanted = list(ALL_FIGURES) if "all" in args.figures else args.figures
    unknown = [f for f in wanted if f not in ALL_FIGURES]
    if unknown:
        parser.error(f"unknown figures: {unknown}; use --list")

    scale = SCALES[args.scale]
    suffix = " [chaos]" if args.chaos else ""
    print(f"# {scale.describe()}{suffix}")
    blocks = []
    for name in wanted:
        start = time.perf_counter()
        result = ALL_FIGURES[name](scale)
        elapsed = time.perf_counter() - start
        block = render_figure(result) + f"\n    [{elapsed:.1f}s]"
        print(block)
        print()
        blocks.append(block)
    if args.out:
        with open(args.out, "a", encoding="utf-8") as fh:
            fh.write(f"# {scale.describe()}\n")
            fh.write("\n\n".join(blocks) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())

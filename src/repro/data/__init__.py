"""Workload generation: synthetic distributions, probability assignment,
the synthetic NYSE trace, and horizontal partitioning."""

from .io import (
    ColumnWriter,
    load_tuples,
    load_tuples_csv,
    load_tuples_jsonl,
    open_columns,
    save_columns,
    save_tuples,
    save_tuples_csv,
    save_tuples_jsonl,
    write_columns,
)
from .nyse import attach_uncertainty, generate_nyse_trades, nyse_preference
from .partition import (
    partition_angle,
    partition_range,
    partition_round_robin,
    partition_uniform,
)
from .probabilities import (
    constant_probabilities,
    gaussian_probabilities,
    generate_probabilities,
    uniform_probabilities,
)
from .synthetic import DISTRIBUTIONS, anticorrelated, correlated, generate_values, independent
from .workload import (
    QueryDraw,
    Workload,
    make_nyse_workload,
    make_synthetic_workload,
    sample_query_mix,
)

__all__ = [
    "independent",
    "correlated",
    "anticorrelated",
    "generate_values",
    "DISTRIBUTIONS",
    "uniform_probabilities",
    "gaussian_probabilities",
    "constant_probabilities",
    "generate_probabilities",
    "partition_uniform",
    "partition_round_robin",
    "partition_range",
    "partition_angle",
    "generate_nyse_trades",
    "attach_uncertainty",
    "nyse_preference",
    "load_tuples",
    "save_tuples",
    "load_tuples_csv",
    "save_tuples_csv",
    "load_tuples_jsonl",
    "save_tuples_jsonl",
    "ColumnWriter",
    "write_columns",
    "save_columns",
    "open_columns",
    "Workload",
    "make_synthetic_workload",
    "make_nyse_workload",
    "QueryDraw",
    "sample_query_mix",
]

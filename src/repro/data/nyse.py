"""Synthetic NYSE trade trace — the substitute for the paper's real data set.

The paper's §7.4 uses "NYSE", two million stock transactions of Dell
Inc. between 1/12/2000 and 22/5/2001, each reduced to two attributes:
the average price per share and the total volume of the deal.  That
data set is proprietary and not redistributable, so this module builds
the closest synthetic equivalent:

* the per-share price follows a **geometric random walk** across the
  trading days of the same date range (daily drift/volatility fitted to
  a typical large-cap of that era), with intraday log-normal execution
  noise around the day level — giving the heavy clustering by price
  level the real trace has;
* per-deal **volume** is log-normal (round lots, occasional block
  trades), independent of price apart from a mild price-impact
  coupling (big blocks pay up to move size), giving the weakly
  anticorrelated-in-preference-space 2-d cloud that makes stock
  skylines interesting.

The skyline semantics of the introduction's motivating example — a
deal beats another when it is *cheaper* and moves *more* shares — are
captured by :func:`nyse_preference` (price MIN, volume MAX).  What the
experiments actually consume from the real trace is only this spatial
shape; every uncertainty aspect is attached afterwards exactly as in
the paper (uniform or Gaussian occurrence probabilities), so the
substitution preserves the behaviour Figs. 11 and 13 measure.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core.dominance import Preference
from ..core.tuples import UncertainTuple, tuples_from_arrays
from .probabilities import generate_probabilities

__all__ = ["generate_nyse_trades", "nyse_preference", "TRADING_DAYS"]

#: Trading days between 2000-12-01 and 2001-05-22 (the paper's window).
TRADING_DAYS = 118


def nyse_preference() -> Preference:
    """Cheap price (MIN) and large volume (MAX) — the 'good deal' order."""
    return Preference.of("min,max")


def generate_nyse_trades(
    n: int,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    start_price: float = 19.0,
    daily_volatility: float = 0.035,
    daily_drift: float = -0.0015,
    intraday_noise: float = 0.004,
    volume_log_mean: float = 6.2,
    volume_log_std: float = 1.1,
    price_volume_coupling: float = 0.08,
    start_key: int = 0,
) -> List[UncertainTuple]:
    """Generate ``n`` synthetic Dell trades as certain 2-d tuples.

    Attributes are ``(price_per_share, volume)``; attach existential
    probabilities afterwards via :func:`attach_uncertainty` or
    :mod:`repro.data.probabilities` directly.  The defaults emulate
    Dell around the 2000–2001 window: a ~$19 start, a mild slide, and
    3–4 % daily volatility.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if rng is None:
        rng = np.random.default_rng(0 if seed is None else seed)
    if n == 0:
        return []
    day_returns = rng.normal(daily_drift, daily_volatility, size=TRADING_DAYS)
    day_levels = start_price * np.exp(np.cumsum(day_returns))
    trade_days = rng.integers(0, TRADING_DAYS, size=n)
    base = day_levels[trade_days]
    price = base * np.exp(rng.normal(0.0, intraday_noise, size=n))
    log_volume = rng.normal(volume_log_mean, volume_log_std, size=n)
    volume = np.round(np.exp(log_volume) / 100.0) * 100.0  # round lots
    volume = np.maximum(volume, 100.0)
    # Mild price impact: block trades pay up to move size, so volume and
    # price are *anticorrelated in preference space* (bigger = costlier)
    # — the property that gives stock traces their interesting skylines.
    price = price * (1.0 + price_volume_coupling * np.tanh((log_volume - volume_log_mean) / 4.0))
    # Real trades are cent-quantized; the resulting ties on both
    # attributes are what give stock traces their comparatively rich
    # skylines (ties never dominate).
    price = np.round(price, 2)
    values = np.column_stack([price, volume])
    ones = np.ones(n)
    return tuples_from_arrays(values, ones, start_key=start_key)


def attach_uncertainty(
    trades: List[UncertainTuple],
    kind: str = "uniform",
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    mean: float = 0.5,
    std: float = 0.2,
) -> List[UncertainTuple]:
    """Return copies of ``trades`` carrying freshly drawn probabilities.

    ``kind``/``mean``/``std`` follow §7.4: ``uniform`` on (0, 1] or
    ``gaussian`` with μ ∈ [0.3, 0.9] and σ = 0.2 — recording errors
    make any individual deal only probably real.
    """
    if rng is None:
        rng = np.random.default_rng(0 if seed is None else seed)
    probs = generate_probabilities(kind, len(trades), rng=rng, mean=mean, std=std)
    return [
        UncertainTuple(key=t.key, values=t.values, probability=float(p))
        for t, p in zip(trades, probs)
    ]

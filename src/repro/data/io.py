"""Reading and writing uncertain relations (CSV, JSON-lines, columns).

The on-disk CSV schema is ``key, <attr_0 … attr_{d-1}>, probability``
with a header row naming the attribute columns; JSONL carries one
``{"key": …, "values": […], "probability": …}`` object per line —
the same shape :func:`repro.net.message.encode_tuple` puts on the
wire.  Both formats round-trip exactly (values are written with
``repr`` precision).

For partitions too large to pass through per-tuple Python objects
(the n=10⁶ scales in ``repro.bench.kernels``), a third format stores a
relation as a *column directory*: raw row-major binary files for
values / probabilities / keys plus a ``meta.json`` sidecar.  It is
written chunk by chunk (:class:`ColumnWriter` / :func:`write_columns`)
so construction is O(chunk) resident, and read back as numpy memmaps
(:func:`open_columns`) that enter the kernel layer zero-copy via
:meth:`repro.core.kernels.ColumnStore.from_arrays`.  Values may be
float32 or float64; probabilities are always float64 (they feed
IEEE-exact Eq.-9 products), keys are int64.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from types import TracebackType
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Type, Union

import numpy as np

from ..core.kernels import ColumnStore
from ..core.tuples import UncertainTuple, validate_database

__all__ = [
    "save_tuples_csv",
    "load_tuples_csv",
    "save_tuples_jsonl",
    "load_tuples_jsonl",
    "save_tuples",
    "load_tuples",
    "ColumnWriter",
    "write_columns",
    "save_columns",
    "open_columns",
]

PathLike = Union[str, Path]

#: Column-directory format version (bump on layout changes).
COLUMNS_FORMAT_VERSION = 1

_VALUE_DTYPES = {"float32": np.float32, "float64": np.float64}


def save_tuples_csv(
    path: PathLike,
    tuples: Sequence[UncertainTuple],
    attribute_names: Optional[Sequence[str]] = None,
) -> None:
    """Write a relation as CSV with a ``key,…attrs…,probability`` header."""
    tuples = list(tuples)
    d = validate_database(tuples)
    if attribute_names is None:
        attribute_names = [f"attr_{j}" for j in range(d)]
    if len(attribute_names) != d:
        raise ValueError(
            f"{len(attribute_names)} attribute names for {d}-dimensional data"
        )
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["key", *attribute_names, "probability"])
        for t in tuples:
            writer.writerow([t.key, *(repr(v) for v in t.values), repr(t.probability)])


def load_tuples_csv(path: PathLike) -> List[UncertainTuple]:
    """Read a relation written by :func:`save_tuples_csv` (or matching it).

    The first column must be the key and the last the probability;
    everything between is an attribute.  A missing/NaN cell raises with
    the offending line number.
    """
    out: List[UncertainTuple] = []
    with open(path, newline="", encoding="utf-8") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header is None:
            return out
        if len(header) < 3:
            raise ValueError(
                f"{path}: need at least key, one attribute, and probability "
                f"columns, got header {header}"
            )
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(header):
                raise ValueError(
                    f"{path}:{line_no}: expected {len(header)} cells, got {len(row)}"
                )
            try:
                out.append(
                    UncertainTuple(
                        key=int(row[0]),
                        values=tuple(float(v) for v in row[1:-1]),
                        probability=float(row[-1]),
                    )
                )
            except ValueError as exc:
                raise ValueError(f"{path}:{line_no}: {exc}") from exc
    validate_database(out)
    return out


def save_tuples_jsonl(path: PathLike, tuples: Iterable[UncertainTuple]) -> None:
    """Write one JSON object per tuple, wire-format compatible."""
    with open(path, "w", encoding="utf-8") as fh:
        for t in tuples:
            fh.write(
                json.dumps(
                    {"key": t.key, "values": list(t.values), "probability": t.probability}
                )
            )
            fh.write("\n")


def load_tuples_jsonl(path: PathLike) -> List[UncertainTuple]:
    """Read a JSONL relation written by :func:`save_tuples_jsonl`."""
    out: List[UncertainTuple] = []
    with open(path, encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                out.append(
                    UncertainTuple(
                        key=int(record["key"]),
                        values=tuple(float(v) for v in record["values"]),
                        probability=float(record["probability"]),
                    )
                )
            except (ValueError, KeyError, TypeError) as exc:
                raise ValueError(f"{path}:{line_no}: {exc}") from exc
    validate_database(out)
    return out


def save_tuples(path: PathLike, tuples: Sequence[UncertainTuple]) -> None:
    """Dispatch on the file suffix (``.csv`` or ``.jsonl``/``.ndjson``)."""
    suffix = Path(path).suffix.lower()
    if suffix == ".csv":
        save_tuples_csv(path, tuples)
    elif suffix in (".jsonl", ".ndjson"):
        save_tuples_jsonl(path, tuples)
    else:
        raise ValueError(f"unsupported relation format {suffix!r}; use .csv or .jsonl")


def load_tuples(path: PathLike) -> List[UncertainTuple]:
    """Dispatch on the file suffix (``.csv`` or ``.jsonl``/``.ndjson``)."""
    suffix = Path(path).suffix.lower()
    if suffix == ".csv":
        return load_tuples_csv(path)
    if suffix in (".jsonl", ".ndjson"):
        return load_tuples_jsonl(path)
    raise ValueError(f"unsupported relation format {suffix!r}; use .csv or .jsonl")


# ----------------------------------------------------------------------
# column directories (memory-mapped relations)
# ----------------------------------------------------------------------


class ColumnWriter:
    """Chunked writer for a column directory.

    Appends ``(values, probabilities, keys)`` array chunks to the raw
    column files and stamps ``meta.json`` on :meth:`close` (or context
    exit), so a crashed write never looks like a complete relation —
    :func:`open_columns` requires the sidecar.

    Only one chunk is resident at a time; total memory is O(chunk), not
    O(n).  Values are cast to the directory's value dtype; float64
    inputs written to a float32 directory lose precision explicitly
    (the caller chose the dtype), never silently on read.
    """

    def __init__(
        self,
        path: PathLike,
        dimensionality: int,
        value_dtype: str = "float64",
    ) -> None:
        if value_dtype not in _VALUE_DTYPES:
            raise ValueError(
                f"value_dtype must be one of {sorted(_VALUE_DTYPES)}, got {value_dtype!r}"
            )
        if dimensionality < 1:
            raise ValueError(f"dimensionality must be >= 1, got {dimensionality}")
        self.path = Path(path)
        self.dimensionality = int(dimensionality)
        self.value_dtype = value_dtype
        self.count = 0
        self._closed = False
        self.path.mkdir(parents=True, exist_ok=True)
        self._values = open(self.path / "values.bin", "wb")
        self._probs = open(self.path / "probabilities.bin", "wb")
        self._keys = open(self.path / "keys.bin", "wb")

    def append(
        self,
        values: np.ndarray,
        probabilities: np.ndarray,
        keys: Optional[np.ndarray] = None,
    ) -> None:
        """Write one chunk; ``keys=None`` auto-numbers from the row count."""
        if self._closed:
            raise ValueError("writer is closed")
        vals = np.ascontiguousarray(values, dtype=_VALUE_DTYPES[self.value_dtype])
        if vals.ndim != 2 or vals.shape[1] != self.dimensionality:
            raise ValueError(
                f"chunk shape {vals.shape} does not match dimensionality "
                f"{self.dimensionality}"
            )
        probs = np.ascontiguousarray(probabilities, dtype=np.float64)
        if probs.shape != (vals.shape[0],):
            raise ValueError(
                f"chunk has {vals.shape[0]} rows but "
                f"{probs.shape[0] if probs.ndim else 'scalar'} probabilities"
            )
        if keys is None:
            key_arr = np.arange(
                self.count, self.count + vals.shape[0], dtype=np.int64
            )
        else:
            key_arr = np.ascontiguousarray(keys, dtype=np.int64)
            if key_arr.shape != (vals.shape[0],):
                raise ValueError(
                    f"chunk has {vals.shape[0]} rows but {key_arr.shape[0]} keys"
                )
        self._values.write(vals.tobytes())
        self._probs.write(probs.tobytes())
        self._keys.write(key_arr.tobytes())
        self.count += vals.shape[0]

    def close(self) -> None:
        """Flush the columns and stamp the ``meta.json`` sidecar."""
        if self._closed:
            return
        self._closed = True
        self._values.close()
        self._probs.close()
        self._keys.close()
        meta = {
            "version": COLUMNS_FORMAT_VERSION,
            "count": self.count,
            "dimensionality": self.dimensionality,
            "value_dtype": self.value_dtype,
        }
        with open(self.path / "meta.json", "w", encoding="utf-8") as fh:
            json.dump(meta, fh)
            fh.write("\n")

    def __enter__(self) -> "ColumnWriter":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        if exc_type is None:
            self.close()
        else:  # leave the directory visibly incomplete (no meta.json)
            self._closed = True
            self._values.close()
            self._probs.close()
            self._keys.close()


def write_columns(
    path: PathLike,
    chunks: Iterable[Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]],
    dimensionality: int,
    value_dtype: str = "float64",
) -> int:
    """Stream ``(values, probabilities, keys)`` chunks into a directory.

    Returns the total row count.  ``keys`` may be ``None`` per chunk to
    auto-number rows sequentially.
    """
    with ColumnWriter(path, dimensionality, value_dtype=value_dtype) as writer:
        for values, probabilities, keys in chunks:
            writer.append(values, probabilities, keys)
        total = writer.count
    return total


def save_columns(
    path: PathLike,
    tuples: Sequence[UncertainTuple],
    value_dtype: str = "float64",
    chunk_size: int = 65536,
) -> int:
    """Write an in-memory relation as a column directory (convenience)."""
    tuples = list(tuples)
    d = validate_database(tuples)
    if not tuples:
        raise ValueError("cannot write an empty column directory")

    def _chunks() -> Iterator[Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]]:
        for start in range(0, len(tuples), chunk_size):
            part = tuples[start : start + chunk_size]
            yield (
                np.array([t.values for t in part], dtype=np.float64),
                np.array([t.probability for t in part], dtype=np.float64),
                np.array([t.key for t in part], dtype=np.int64),
            )

    return write_columns(path, _chunks(), d, value_dtype=value_dtype)


def open_columns(path: PathLike, mmap: bool = True) -> ColumnStore:
    """Open a column directory as a :class:`ColumnStore`.

    With ``mmap=True`` (default) the columns are ``np.memmap`` views —
    opening a million-row relation touches no row data until a kernel
    reads it.  ``mmap=False`` loads plain in-RAM arrays instead.  The
    store's coordinates are taken as already canonical (min-space);
    apply preferences before writing.
    """
    root = Path(path)
    meta_path = root / "meta.json"
    if not meta_path.exists():
        raise FileNotFoundError(
            f"{root}: not a column directory (missing meta.json — "
            "incomplete write?)"
        )
    with open(meta_path, encoding="utf-8") as fh:
        meta = json.load(fh)
    version = meta.get("version")
    if version != COLUMNS_FORMAT_VERSION:
        raise ValueError(
            f"{root}: unsupported column-directory version {version!r}"
        )
    n = int(meta["count"])
    d = int(meta["dimensionality"])
    value_dtype = _VALUE_DTYPES[str(meta["value_dtype"])]
    values: np.ndarray
    probabilities: np.ndarray
    keys: np.ndarray
    if mmap:
        values = np.memmap(root / "values.bin", dtype=value_dtype, mode="r", shape=(n, d))
        probabilities = np.memmap(
            root / "probabilities.bin", dtype=np.float64, mode="r", shape=(n,)
        )
        keys = np.memmap(root / "keys.bin", dtype=np.int64, mode="r", shape=(n,))
    else:
        values = np.fromfile(root / "values.bin", dtype=value_dtype).reshape(n, d)
        probabilities = np.fromfile(root / "probabilities.bin", dtype=np.float64)
        keys = np.fromfile(root / "keys.bin", dtype=np.int64)
    return ColumnStore.from_arrays(values, probabilities, keys=keys)

"""Reading and writing uncertain relations (CSV and JSON-lines).

The on-disk CSV schema is ``key, <attr_0 … attr_{d-1}>, probability``
with a header row naming the attribute columns; JSONL carries one
``{"key": …, "values": […], "probability": …}`` object per line —
the same shape :func:`repro.net.message.encode_tuple` puts on the
wire.  Both formats round-trip exactly (values are written with
``repr`` precision).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from ..core.tuples import UncertainTuple, validate_database

__all__ = [
    "save_tuples_csv",
    "load_tuples_csv",
    "save_tuples_jsonl",
    "load_tuples_jsonl",
    "save_tuples",
    "load_tuples",
]

PathLike = Union[str, Path]


def save_tuples_csv(
    path: PathLike,
    tuples: Sequence[UncertainTuple],
    attribute_names: Optional[Sequence[str]] = None,
) -> None:
    """Write a relation as CSV with a ``key,…attrs…,probability`` header."""
    tuples = list(tuples)
    d = validate_database(tuples)
    if attribute_names is None:
        attribute_names = [f"attr_{j}" for j in range(d)]
    if len(attribute_names) != d:
        raise ValueError(
            f"{len(attribute_names)} attribute names for {d}-dimensional data"
        )
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["key", *attribute_names, "probability"])
        for t in tuples:
            writer.writerow([t.key, *(repr(v) for v in t.values), repr(t.probability)])


def load_tuples_csv(path: PathLike) -> List[UncertainTuple]:
    """Read a relation written by :func:`save_tuples_csv` (or matching it).

    The first column must be the key and the last the probability;
    everything between is an attribute.  A missing/NaN cell raises with
    the offending line number.
    """
    out: List[UncertainTuple] = []
    with open(path, newline="", encoding="utf-8") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header is None:
            return out
        if len(header) < 3:
            raise ValueError(
                f"{path}: need at least key, one attribute, and probability "
                f"columns, got header {header}"
            )
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(header):
                raise ValueError(
                    f"{path}:{line_no}: expected {len(header)} cells, got {len(row)}"
                )
            try:
                out.append(
                    UncertainTuple(
                        key=int(row[0]),
                        values=tuple(float(v) for v in row[1:-1]),
                        probability=float(row[-1]),
                    )
                )
            except ValueError as exc:
                raise ValueError(f"{path}:{line_no}: {exc}") from exc
    validate_database(out)
    return out


def save_tuples_jsonl(path: PathLike, tuples: Iterable[UncertainTuple]) -> None:
    """Write one JSON object per tuple, wire-format compatible."""
    with open(path, "w", encoding="utf-8") as fh:
        for t in tuples:
            fh.write(
                json.dumps(
                    {"key": t.key, "values": list(t.values), "probability": t.probability}
                )
            )
            fh.write("\n")


def load_tuples_jsonl(path: PathLike) -> List[UncertainTuple]:
    """Read a JSONL relation written by :func:`save_tuples_jsonl`."""
    out: List[UncertainTuple] = []
    with open(path, encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                out.append(
                    UncertainTuple(
                        key=int(record["key"]),
                        values=tuple(float(v) for v in record["values"]),
                        probability=float(record["probability"]),
                    )
                )
            except (ValueError, KeyError, TypeError) as exc:
                raise ValueError(f"{path}:{line_no}: {exc}") from exc
    validate_database(out)
    return out


def save_tuples(path: PathLike, tuples: Sequence[UncertainTuple]) -> None:
    """Dispatch on the file suffix (``.csv`` or ``.jsonl``/``.ndjson``)."""
    suffix = Path(path).suffix.lower()
    if suffix == ".csv":
        save_tuples_csv(path, tuples)
    elif suffix in (".jsonl", ".ndjson"):
        save_tuples_jsonl(path, tuples)
    else:
        raise ValueError(f"unsupported relation format {suffix!r}; use .csv or .jsonl")


def load_tuples(path: PathLike) -> List[UncertainTuple]:
    """Dispatch on the file suffix (``.csv`` or ``.jsonl``/``.ndjson``)."""
    suffix = Path(path).suffix.lower()
    if suffix == ".csv":
        return load_tuples_csv(path)
    if suffix in (".jsonl", ".ndjson"):
        return load_tuples_jsonl(path)
    raise ValueError(f"unsupported relation format {suffix!r}; use .csv or .jsonl")

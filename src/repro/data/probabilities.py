"""Existential-probability assignment (§7, "Data set" and §7.4).

The paper makes generated tuples uncertain by attaching an occurrence
probability drawn from either

* **uniform** — uniform on (0, 1] (its default for all synthetic
  experiments), or
* **gaussian** — ``N(μ, σ=0.2)`` with μ swept over {0.3 … 0.9} for the
  NYSE study (Figs. 11c/11d, 13), clipped into (0, 1].

``constant`` is provided as the degenerate case: with every probability
equal to 1 the probabilistic skyline collapses to the conventional one,
which several tests exploit as a cross-check against the certain-data
algorithms.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "uniform_probabilities",
    "gaussian_probabilities",
    "constant_probabilities",
    "generate_probabilities",
]

#: Smallest probability ever assigned; the model requires P(t) > 0.
_EPSILON = 1e-9


def uniform_probabilities(n: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform on ``(ε, 1]`` occurrence probabilities."""
    return np.clip(rng.random(n), _EPSILON, 1.0)


def gaussian_probabilities(
    n: int, rng: np.random.Generator, mean: float = 0.5, std: float = 0.2
) -> np.ndarray:
    """Gaussian ``N(mean, std)`` probabilities clipped into ``(ε, 1]``."""
    return np.clip(rng.normal(mean, std, size=n), _EPSILON, 1.0)


def constant_probabilities(n: int, value: float = 1.0) -> np.ndarray:
    """Every tuple occurs with the same probability ``value``."""
    if not 0.0 < value <= 1.0:
        raise ValueError(f"probability must be in (0, 1], got {value!r}")
    return np.full(n, value)


def generate_probabilities(
    kind: str,
    n: int,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    mean: float = 0.5,
    std: float = 0.2,
    value: float = 1.0,
) -> np.ndarray:
    """Dispatch by kind (``uniform`` / ``gaussian`` / ``constant``)."""
    if rng is None:
        rng = np.random.default_rng(0 if seed is None else seed)
    if kind == "uniform":
        return uniform_probabilities(n, rng)
    if kind == "gaussian":
        return gaussian_probabilities(n, rng, mean=mean, std=std)
    if kind == "constant":
        return constant_probabilities(n, value=value)
    raise ValueError(
        f"unknown probability kind {kind!r}; expected uniform, gaussian, or constant"
    )

"""Synthetic attribute-value generators (§7, "Data set").

The paper evaluates on the two canonical skyline benchmark
distributions introduced by Börzsönyi et al. and sketched in its
Fig. 7:

* **Independent** — every attribute i.i.d. uniform on [0, 1].
* **Anticorrelated** — points concentrate around the hyperplane
  ``Σ x_j = d/2``: a point good in one dimension tends to be bad in the
  others, which inflates skyline cardinality and is the adversarial
  case for every skyline algorithm.

A **correlated** generator (points hugging the diagonal, tiny skylines)
is included as the customary third benchmark even though the paper
omits it — it rounds out sensitivity studies, and several tests use it
as the easy extreme.

All generators take a :class:`numpy.random.Generator` and return an
``(n, d)`` float array in ``[0, 1]^d``; attach probabilities with
:mod:`repro.data.probabilities` and wrap into tuples with
:func:`repro.core.tuples.tuples_from_arrays`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "independent",
    "correlated",
    "anticorrelated",
    "clustered",
    "generate_values",
    "DISTRIBUTIONS",
]


def independent(n: int, d: int, rng: np.random.Generator) -> np.ndarray:
    """I.i.d. uniform values on ``[0, 1]^d``."""
    _check(n, d)
    return rng.random((n, d))


def correlated(
    n: int, d: int, rng: np.random.Generator, spread: float = 0.15
) -> np.ndarray:
    """Values clustered around the main diagonal.

    Each point is a diagonal anchor ``(v, …, v)`` plus per-dimension
    Gaussian noise of scale ``spread``, clipped back to the unit cube.
    Positive inter-dimension correlation ⇒ tiny skylines.
    """
    _check(n, d)
    anchor = rng.random((n, 1))
    points = anchor + rng.normal(0.0, spread, size=(n, d))
    return np.clip(points, 0.0, 1.0)


def anticorrelated(
    n: int, d: int, rng: np.random.Generator, spread: float = 0.05
) -> np.ndarray:
    """Values concentrated around the hyperplane ``Σ x_j = d/2``.

    A per-point budget ``s ~ N(d/2, spread·d)`` is split across the
    dimensions with exponential weights, so dimensions trade off
    against each other — the defining negative correlation.  Clipping
    to the unit cube keeps the domain identical to the other
    generators.
    """
    _check(n, d)
    if d == 1:
        # With one dimension there is nothing to anticorrelate.
        return rng.random((n, 1))
    budget = rng.normal(d / 2.0, spread * d, size=(n, 1))
    budget = np.clip(budget, 0.05 * d, 0.95 * d)
    weights = rng.exponential(1.0, size=(n, d))
    weights /= weights.sum(axis=1, keepdims=True)
    points = weights * budget
    return np.clip(points, 0.0, 1.0)


def clustered(
    n: int,
    d: int,
    rng: np.random.Generator,
    clusters: int = 5,
    spread: float = 0.05,
) -> np.ndarray:
    """A Gaussian-mixture cloud: ``clusters`` centers, tight blobs.

    Not used by the paper's experiments, but the customary fourth
    benchmark shape (it stresses index locality: whole blobs fall
    inside or outside a dominance region together, which is exactly
    what the PR-tree's subtree aggregates exploit).
    """
    _check(n, d)
    if clusters < 1:
        raise ValueError("need at least one cluster")
    if n == 0:
        return np.zeros((0, d))
    centers = rng.random((clusters, d)) * 0.8 + 0.1
    assignment = rng.integers(0, clusters, size=n)
    points = centers[assignment] + rng.normal(0.0, spread, size=(n, d))
    return np.clip(points, 0.0, 1.0)


DISTRIBUTIONS = {
    "independent": independent,
    "correlated": correlated,
    "anticorrelated": anticorrelated,
    "clustered": clustered,
}


def generate_values(
    distribution: str,
    n: int,
    d: int,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Dispatch by distribution name (``independent`` / ``correlated`` /
    ``anticorrelated``)."""
    if distribution not in DISTRIBUTIONS:
        raise ValueError(
            f"unknown distribution {distribution!r}; "
            f"expected one of {sorted(DISTRIBUTIONS)}"
        )
    if rng is None:
        rng = np.random.default_rng(0 if seed is None else seed)
    return DISTRIBUTIONS[distribution](n, d, rng)


def _check(n: int, d: int) -> None:
    if n < 0:
        raise ValueError("n must be non-negative")
    if d < 1:
        raise ValueError("dimensionality must be at least 1")

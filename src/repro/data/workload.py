"""One-call workload assembly for experiments, examples, and tests.

A :class:`Workload` bundles everything one run of a distributed skyline
experiment needs: the global uncertain database, its partition onto
``m`` sites, and the dominance preference — all derived from a single
seed so every algorithm in a comparison sees byte-identical data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.dominance import Preference
from ..core.tuples import UncertainTuple, tuples_from_arrays
from .nyse import attach_uncertainty, generate_nyse_trades, nyse_preference
from .partition import partition_uniform
from .probabilities import generate_probabilities
from .synthetic import generate_values

__all__ = [
    "Workload",
    "make_synthetic_workload",
    "make_nyse_workload",
    "QueryDraw",
    "sample_query_mix",
    "StreamArrival",
    "make_synthetic_stream",
]


@dataclass
class Workload:
    """A ready-to-run distributed skyline problem instance."""

    name: str
    global_database: List[UncertainTuple]
    partitions: List[List[UncertainTuple]]
    preference: Optional[Preference] = None
    seed: Optional[int] = None

    @property
    def cardinality(self) -> int:
        return len(self.global_database)

    @property
    def sites(self) -> int:
        return len(self.partitions)

    @property
    def dimensionality(self) -> int:
        return self.global_database[0].dimensionality if self.global_database else 0

    def describe(self) -> str:
        return (
            f"{self.name}: N={self.cardinality} d={self.dimensionality} "
            f"m={self.sites} seed={self.seed}"
        )

    def save(self, directory) -> None:
        """Persist the workload — partitions included — for exact reruns.

        Writes ``manifest.json`` (name, seed, preference, site count)
        plus one JSONL relation per site; :meth:`load` restores a
        byte-identical workload, so two machines can benchmark the same
        placement, not merely the same seed.
        """
        import json
        from pathlib import Path

        from .io import save_tuples_jsonl

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest = {
            "name": self.name,
            "seed": self.seed,
            "sites": self.sites,
            "preference": self.preference.to_dict() if self.preference else None,
        }
        (directory / "manifest.json").write_text(json.dumps(manifest, indent=2))
        for i, partition in enumerate(self.partitions):
            save_tuples_jsonl(directory / f"site_{i}.jsonl", partition)

    @classmethod
    def load(cls, directory) -> "Workload":
        """Restore a workload written by :meth:`save`."""
        import json
        from pathlib import Path

        from ..core.dominance import Preference
        from .io import load_tuples_jsonl

        directory = Path(directory)
        manifest = json.loads((directory / "manifest.json").read_text())
        partitions = [
            load_tuples_jsonl(directory / f"site_{i}.jsonl")
            for i in range(int(manifest["sites"]))
        ]
        preference = (
            Preference.from_dict(manifest["preference"])
            if manifest.get("preference")
            else None
        )
        return cls(
            name=str(manifest["name"]),
            global_database=[t for p in partitions for t in p],
            partitions=partitions,
            preference=preference,
            seed=manifest.get("seed"),
        )


def make_synthetic_workload(
    distribution: str = "independent",
    n: int = 10_000,
    d: int = 3,
    sites: int = 10,
    probability_kind: str = "uniform",
    probability_mean: float = 0.5,
    probability_std: float = 0.2,
    seed: Optional[int] = None,
) -> Workload:
    """Build the paper's synthetic setting at any scale.

    Mirrors §7's recipe: draw values from ``distribution``, attach
    occurrence probabilities of ``probability_kind``, then scatter the
    tuples uniformly over ``sites`` equal partitions.  ``seed=None``
    means seed 0 — every workload is replayable by construction.
    """
    seed = 0 if seed is None else seed
    rng = np.random.default_rng(seed)
    values = generate_values(distribution, n, d, rng=rng)
    probs = generate_probabilities(
        probability_kind, n, rng=rng, mean=probability_mean, std=probability_std
    )
    database = tuples_from_arrays(values, probs)
    partitions = partition_uniform(database, sites, rng=random.Random(seed + 1))
    return Workload(
        name=f"synthetic-{distribution}-{probability_kind}",
        global_database=database,
        partitions=partitions,
        preference=None,
        seed=seed,
    )


@dataclass(frozen=True)
class QueryDraw:
    """One sampled query: the knobs a multi-query workload varies.

    Transport-agnostic on purpose — the serving bench turns a draw
    into a :class:`repro.serve.QuerySpec`, a future load test could
    turn the same draw into CLI invocations — so the *mix* is pinned
    by seed independently of who consumes it.  ``subspace`` is a
    sorted dimension tuple for a §4 subspace preference, or ``None``
    for the full space.
    """

    threshold: float
    algorithm: str = "dsud"
    limit: Optional[int] = None
    subspace: Optional[Tuple[int, ...]] = None
    batch_size: int = 1
    tenant: str = "default"


def sample_query_mix(
    n: int,
    d: int,
    seed: Optional[int] = None,
    thresholds: Sequence[float] = (0.3, 0.4, 0.5, 0.6),
    algorithms: Sequence[str] = ("dsud", "edsud"),
    limit_fraction: float = 0.3,
    limits: Sequence[int] = (3, 5, 10),
    subspace_fraction: float = 0.25,
    batch_sizes: Sequence[int] = (1, 1, 4),
    tenants: Sequence[str] = ("default",),
) -> List[QueryDraw]:
    """Draw a seed-deterministic stochastic mix of ``n`` queries.

    The shared vocabulary of the service bench and future load tests:
    one seed, one mix — byte-identical on every machine (the draws use
    :class:`random.Random`, whose algorithm is pinned by the language).
    Each query independently draws a threshold, an algorithm, and a
    batch size uniformly from the given pools; becomes a top-k query
    with probability ``limit_fraction``; and with probability
    ``subspace_fraction`` evaluates dominance on a random ``≥ 2``-dim
    subspace of the ``d`` dimensions (skipped when ``d < 3`` — a
    1-dim subspace degenerates).  ``seed=None`` means seed 0, matching
    the workload builders above.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n!r}")
    if d < 1:
        raise ValueError(f"d must be positive, got {d!r}")
    seed = 0 if seed is None else seed
    rng = random.Random(seed)
    draws: List[QueryDraw] = []
    for _ in range(n):
        threshold = rng.choice(list(thresholds))
        algorithm = rng.choice(list(algorithms))
        batch_size = rng.choice(list(batch_sizes))
        limit = (
            rng.choice(list(limits)) if rng.random() < limit_fraction else None
        )
        subspace: Optional[Tuple[int, ...]] = None
        if d >= 3 and rng.random() < subspace_fraction:
            k = rng.randrange(2, d)
            subspace = tuple(sorted(rng.sample(range(d), k)))
        tenant = rng.choice(list(tenants))
        draws.append(
            QueryDraw(
                threshold=threshold,
                algorithm=algorithm,
                limit=limit,
                subspace=subspace,
                batch_size=batch_size,
                tenant=tenant,
            )
        )
    return draws


@dataclass(frozen=True)
class StreamArrival:
    """One event of a distributed uncertain stream.

    ``site_id`` names the ingesting site, ``stamp`` is a non-decreasing
    global arrival time (seconds).  A schedule of arrivals is the
    transport-agnostic input of the continuous-query subsystem: the
    stream bench, the ``stream`` CLI subcommand, and the epoch-
    equivalence tests all replay the same seeded schedules.
    """

    site_id: int
    tuple: UncertainTuple
    stamp: float


def make_synthetic_stream(
    distribution: str = "independent",
    n: int = 1_000,
    d: int = 3,
    sites: int = 4,
    probability_kind: str = "uniform",
    probability_mean: float = 0.5,
    probability_std: float = 0.2,
    mean_interarrival: float = 1.0,
    seed: Optional[int] = None,
) -> List[StreamArrival]:
    """Draw a seed-deterministic schedule of ``n`` stream arrivals.

    The values and occurrence probabilities come from the same §7
    generators as :func:`make_synthetic_workload`; each tuple is then
    assigned a uniformly random ingesting site and a Poisson-process
    arrival time (exponential inter-arrival gaps of mean
    ``mean_interarrival`` seconds).  Stamps are strictly increasing, so
    any window kind accepts the schedule.  ``seed=None`` means seed 0 —
    one seed, one stream, byte-identical on every machine.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n!r}")
    if sites < 1:
        raise ValueError(f"sites must be positive, got {sites!r}")
    if mean_interarrival <= 0:
        raise ValueError(
            f"mean_interarrival must be positive, got {mean_interarrival!r}"
        )
    seed = 0 if seed is None else seed
    rng = np.random.default_rng(seed)
    values = generate_values(distribution, n, d, rng=rng)
    probs = generate_probabilities(
        probability_kind, n, rng=rng, mean=probability_mean, std=probability_std
    )
    database = tuples_from_arrays(values, probs)
    schedule_rng = random.Random(seed + 1)
    clock = 0.0
    arrivals: List[StreamArrival] = []
    for t in database:
        clock += schedule_rng.expovariate(1.0 / mean_interarrival)
        site_id = schedule_rng.randrange(sites)
        arrivals.append(StreamArrival(site_id=site_id, tuple=t, stamp=clock))
    return arrivals


def make_nyse_workload(
    n: int = 10_000,
    sites: int = 10,
    probability_kind: str = "uniform",
    probability_mean: float = 0.5,
    probability_std: float = 0.2,
    seed: Optional[int] = None,
) -> Workload:
    """Build the §7.4 setting on the synthetic NYSE substitute trace.

    ``seed=None`` means seed 0, as in :func:`make_synthetic_workload`.
    """
    seed = 0 if seed is None else seed
    rng = np.random.default_rng(seed)
    trades = generate_nyse_trades(n, rng=rng)
    database = attach_uncertainty(
        trades, kind=probability_kind, rng=rng, mean=probability_mean, std=probability_std
    )
    partitions = partition_uniform(database, sites, rng=random.Random(seed + 1))
    return Workload(
        name=f"nyse-{probability_kind}",
        global_database=database,
        partitions=partitions,
        preference=nyse_preference(),
        seed=seed,
    )

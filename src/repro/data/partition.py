"""Horizontal partitioning of the global database onto local sites.

The paper's setting (§7): after generating the global database ``D``,
"each tuple … is assigned to site S_i chosen uniformly", every site
holding a mutually disjoint random sample of equal size ``|D| / m`` —
so all sites share the global distribution.  :func:`partition_uniform`
reproduces that exactly.

Two further partitioners support sensitivity studies beyond the paper:
round-robin (deterministic, still distribution-preserving) and range
partitioning on one attribute (deliberately *skewed* sites, the regime
where feedback pruning behaves very differently — used by the ablation
benchmarks).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..core.tuples import UncertainTuple

__all__ = [
    "partition_uniform",
    "partition_round_robin",
    "partition_range",
    "partition_angle",
]


def partition_uniform(
    tuples: Sequence[UncertainTuple],
    sites: int,
    rng: Optional[random.Random] = None,
) -> List[List[UncertainTuple]]:
    """Random disjoint equal-size assignment (the paper's scheme).

    Sizes differ by at most one when ``m`` does not divide ``N``.
    Deterministic by default (a fixed seed-0 generator); pass ``rng``
    to vary the placement.
    """
    _check_sites(sites)
    if rng is None:
        rng = random.Random(0)
    shuffled = list(tuples)
    rng.shuffle(shuffled)
    return _deal(shuffled, sites)


def partition_round_robin(
    tuples: Sequence[UncertainTuple], sites: int
) -> List[List[UncertainTuple]]:
    """Deterministic round-robin assignment (reproducible, unskewed)."""
    _check_sites(sites)
    out: List[List[UncertainTuple]] = [[] for _ in range(sites)]
    for i, t in enumerate(tuples):
        out[i % sites].append(t)
    return out


def partition_range(
    tuples: Sequence[UncertainTuple], sites: int, dim: int = 0
) -> List[List[UncertainTuple]]:
    """Contiguous ranges of attribute ``dim`` — maximally skewed sites.

    Site 0 receives the smallest values (and with min-preference
    therefore almost the entire global skyline); the last site's tuples
    are nearly all dominated.  Useful for stress-testing feedback
    pruning under non-uniform placement.
    """
    _check_sites(sites)
    ordered = sorted(tuples, key=lambda t: t.values[dim])
    return _deal_contiguous(ordered, sites)


def partition_angle(
    tuples: Sequence[UncertainTuple], sites: int
) -> List[List[UncertainTuple]]:
    """Angle-based partitioning (Vlachou et al., the paper's ref. [21]).

    Tuples are bucketed by the direction of their value vector from the
    origin rather than by position: each site receives one angular
    wedge.  The scheme is purpose-built for skyline workloads — every
    wedge touches the origin region, so *every* site holds a share of
    the global skyline and contributes useful candidates early, unlike
    range partitioning where trailing sites hold only dominated data.

    Implemented for any dimensionality by sorting on the first
    hyper-spherical angle tuple (computed on rank-normalised values so
    skewed attribute scales do not collapse the wedges) and cutting
    into equal-size groups, which keeps the per-site load balanced
    exactly while preserving the angular contiguity that matters.
    """
    _check_sites(sites)
    tuples = list(tuples)
    if not tuples:
        return [[] for _ in range(sites)]
    d = tuples[0].dimensionality
    if d == 1:
        # No angles in one dimension; fall back to balanced ranges.
        return partition_range(tuples, sites, dim=0)

    # Rank-normalise each dimension into (0, 1] so angles are scale-free.
    ranks: List[dict] = []
    for j in range(d):
        ordered = sorted(t.values[j] for t in tuples)
        ranks.append({v: (i + 1) / len(ordered) for i, v in enumerate(ordered)})

    def angles(t: UncertainTuple):
        import math

        coords = [ranks[j][t.values[j]] for j in range(d)]
        out = []
        for j in range(d - 1):
            rest = math.sqrt(sum(c * c for c in coords[j + 1 :]))
            out.append(math.atan2(rest, coords[j]))
        return tuple(out)

    ordered = sorted(tuples, key=angles)
    return _deal_contiguous(ordered, sites)


def _deal(tuples: List[UncertainTuple], sites: int) -> List[List[UncertainTuple]]:
    """Contiguous equal slices of an (already shuffled) list."""
    return _deal_contiguous(tuples, sites)


def _deal_contiguous(
    tuples: List[UncertainTuple], sites: int
) -> List[List[UncertainTuple]]:
    n = len(tuples)
    base, extra = divmod(n, sites)
    out = []
    start = 0
    for i in range(sites):
        size = base + (1 if i < extra else 0)
        out.append(tuples[start : start + size])
        start += size
    return out


def _check_sites(sites: int) -> None:
    if sites < 1:
        raise ValueError("need at least one site")

"""Standing queries and the deltas their clients receive.

A continuous client registers a :class:`StandingQuery` — the same knobs
as a one-shot :class:`~repro.serve.session.QuerySpec` minus everything
that only makes sense for a finite run — and from then on receives an
ordered sequence of :class:`ResultDelta` notifications instead of a
one-shot answer:

* ``ENTER`` — the tuple joined the query's result set (probability and
  tuple attached),
* ``EXIT`` — it left (key only),
* ``RESCORE`` — it stayed but its global skyline probability changed
  (new probability attached).

Within one epoch a query's deltas are emitted EXITs first (ascending
key), then ENTER/RESCOREs in the result set's canonical order —
descending probability, key-ascending on ties — so replaying a delta
stream reconstructs, at every epoch, exactly the result a fresh
:func:`~repro.distributed.query.distributed_skyline` run over the live
window contents would report (the subsystem's exactness contract).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..core.dominance import Preference
from ..core.tuples import UncertainTuple

__all__ = ["StandingQuery", "DeltaKind", "ResultDelta"]


@dataclass(frozen=True)
class StandingQuery:
    """One registered continuous query.

    ``threshold`` is the probability threshold ``p`` the paper's
    one-shot queries take; ``preference`` optionally restricts dominance
    to a subspace or flips directions; ``limit`` keeps only the top-k
    most probable qualified tuples in the pushed result; ``tenant``
    names the bandwidth account the serving layer bills delta traffic
    to.
    """

    threshold: float
    preference: Optional[Preference] = None
    limit: Optional[int] = None
    tenant: str = "default"

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError(
                f"threshold must be in (0, 1], got {self.threshold!r}"
            )
        if self.limit is not None and self.limit < 1:
            raise ValueError(f"limit must be >= 1, got {self.limit!r}")


class DeltaKind(enum.Enum):
    """What one notification says about one tuple."""

    ENTER = "enter"
    EXIT = "exit"
    RESCORE = "rescore"


@dataclass(frozen=True)
class ResultDelta:
    """One ordered notification for one standing query."""

    query_id: int
    epoch: int
    kind: DeltaKind
    key: int
    probability: Optional[float] = None
    tuple: Optional[UncertainTuple] = None

    def describe(self) -> str:
        prob = "" if self.probability is None else f" P={self.probability:.6f}"
        return (
            f"epoch {self.epoch} query {self.query_id}: "
            f"{self.kind.value.upper()} key={self.key}{prob}"
        )

"""Continuous skyline queries over sliding-window uncertain streams.

The subsystem turns the repo's one-shot DSUD/e-DSUD machinery into a
standing-query service: :class:`~repro.stream.site.StreamSite` ingests
per-site streams under a :mod:`~repro.stream.windows` policy and
pre-filters candidates at the edge; :class:`~repro.stream.coordinator.ContinuousCoordinator`
maintains the registered result sets and emits ordered
:class:`~repro.stream.deltas.ResultDelta` notifications at every epoch
close.  See ``docs/streaming.md`` for the protocol and the bit-identical
exactness contract.
"""

from .coordinator import ContinuousCoordinator
from .deltas import DeltaKind, ResultDelta, StandingQuery
from .site import StreamDigest, StreamSite, streaming_site_config
from .windows import (
    WINDOW_KINDS,
    CountWindow,
    SlidingTimeWindow,
    TumblingTimeWindow,
    Window,
    make_window,
)

__all__ = [
    "ContinuousCoordinator",
    "DeltaKind",
    "ResultDelta",
    "StandingQuery",
    "StreamDigest",
    "StreamSite",
    "streaming_site_config",
    "Window",
    "CountWindow",
    "SlidingTimeWindow",
    "TumblingTimeWindow",
    "WINDOW_KINDS",
    "make_window",
]

"""The :class:`ContinuousCoordinator`: standing queries, pushed deltas.

The continuous counterpart of the one-shot DSUD/e-DSUD coordinator:
clients *register* :class:`~repro.stream.deltas.StandingQuery` specs,
sites ingest their sliding-window streams, and every call to
:meth:`ContinuousCoordinator.close_epoch` reconciles the global result
sets and returns the ordered :class:`~repro.stream.deltas.ResultDelta`
notifications for every registered query.

Exactness contract (pinned by ``tests/stream/``): after every epoch,
:meth:`result` for each query is **bit-identical** — keys,
probabilities, and canonical order — to a fresh
:func:`~repro.distributed.query.distributed_skyline` run over the
current live window contents of all sites.  The mechanism is the
canonical product: a fresh run scores an answer member as its origin
site's local skyline probability times the other sites' Eq. 9 probe
factors, multiplied in ascending site order — and both inputs are pure
(bit-stable) functions of each site's window contents, so the
coordinator can cache them and re-multiply instead of re-asking.

Per epoch and preference group, the protocol exchanges (and bills):

1. each site's :class:`~repro.stream.site.StreamDigest` — ``DELTA``
   messages (one tuple per newly entered candidate, zero for re-scores
   and factor pushes) and ``EXPIRE`` notices for departures;
2. replication of new candidates to the other sites — ``REPLICA_SYNC``
   down (tuple-bearing), a ``DELTA`` factor reply back (zero tuples);
3. notifications to clients — ``NOTIFY`` (zero tuples, like
   ``RESULT``: answers are excluded from the §3.2 bandwidth metric).

Registration and group teardown travel as ``SUBSCRIBE`` control
messages.  All of it lands in the same :class:`~repro.net.stats.NetworkStats`
books the one-shot protocol bills, so suppressed-versus-shipped ratios
read straight off ``stats.tuples_transmitted``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.dominance import Preference
from ..core.prob_skyline import ProbabilisticSkyline, SkylineMember
from ..core.tuples import UncertainTuple
from ..net.message import Message, MessageKind
from ..net.stats import LatencyModel, NetworkStats
from .deltas import DeltaKind, ResultDelta, StandingQuery
from .site import StreamSite

__all__ = ["ContinuousCoordinator"]

_SERVER = "server"

#: A preference collapses to this hashable identity for grouping.
_PrefKey = Tuple[Optional[Tuple[str, ...]], Optional[Tuple[int, ...]]]


def _preference_key(preference: Optional[Preference]) -> _PrefKey:
    if preference is None:
        return (None, None)
    directions = (
        None
        if preference.directions is None
        else tuple(str(d) for d in preference.directions)
    )
    subspace = (
        None if preference.subspace is None else tuple(preference.subspace)
    )
    return (directions, subspace)


class _PoolEntry:
    """One global candidate: origin-local score plus cached probe factors."""

    __slots__ = ("tuple", "origin", "local", "factors", "probability")

    def __init__(self, t: UncertainTuple, origin: int, local: float) -> None:
        self.tuple = t
        self.origin = origin
        self.local = local
        self.factors: Dict[int, float] = {}
        self.probability = local


class _GroupBook:
    """Coordinator-side state for one preference group."""

    def __init__(
        self, group_id: int, preference: Optional[Preference]
    ) -> None:
        self.group_id = group_id
        self.preference = preference
        self.query_ids: List[int] = []
        self.pool: Dict[int, _PoolEntry] = {}


class ContinuousCoordinator:
    """Standing-query coordinator over :class:`StreamSite` participants."""

    def __init__(
        self,
        sites: Sequence[StreamSite],
        latency_model: Optional[LatencyModel] = None,
    ) -> None:
        if not sites:
            raise ValueError("need at least one stream site")
        self.sites = list(sites)
        ids = [site.site_id for site in self.sites]
        if ids != sorted(set(ids)):
            raise ValueError(
                f"site ids must be unique and ascending, got {ids!r}"
            )
        self.stats = NetworkStats(latency_model=latency_model or LatencyModel())
        self.epoch = 0
        self._queries: Dict[int, StandingQuery] = {}
        self._views: Dict[int, Dict[int, float]] = {}
        self._groups: Dict[_PrefKey, _GroupBook] = {}
        self._next_query_id = 0
        self._next_group_id = 0
        self._seen_keys: set = set()
        #: Arrivals ingested since the last epoch close — the naive
        #: forwarding baseline would have shipped every one of them.
        self.arrivals_this_epoch = 0
        self.arrivals_total = 0
        #: Uplink tuples actually shipped (DELTA-entered candidates) and
        #: downlink replication cost, for suppressed-vs-shipped ratios.
        self.candidates_shipped = 0
        self.replicas_shipped = 0

    # ------------------------------------------------------------------
    # registration (SUBSCRIBE control traffic)
    # ------------------------------------------------------------------

    def register(self, query: StandingQuery) -> int:
        """Register one standing query; returns its query id.

        The first notification batch for the query arrives at the next
        :meth:`close_epoch` (an ``ENTER`` per current member).
        """
        self._next_query_id += 1
        query_id = self._next_query_id
        self._queries[query_id] = query
        self._views[query_id] = {}
        self._account(MessageKind.SUBSCRIBE, f"client-{query_id}", _SERVER)
        key = _preference_key(query.preference)
        book = self._groups.get(key)
        if book is None:
            book = _GroupBook(self._next_group_id, query.preference)
            self._next_group_id += 1
            self._groups[key] = book
        previous_q_min = self._q_min(book) if book.query_ids else None
        book.query_ids.append(query_id)
        q_min = self._q_min(book)
        if previous_q_min is None or q_min < previous_q_min:
            # A new or loosened suppression bound must reach the edge.
            for site in self.sites:
                self._account(MessageKind.SUBSCRIBE, _SERVER, self._name(site))
                site.register_group(book.group_id, q_min, book.preference)
        return query_id

    def unregister(self, query_id: int) -> None:
        """Tear one standing query down; its group follows if now empty."""
        query = self._queries.pop(query_id, None)
        if query is None:
            raise KeyError(f"no standing query {query_id}")
        self._views.pop(query_id, None)
        key = _preference_key(query.preference)
        book = self._groups[key]
        book.query_ids.remove(query_id)
        if not book.query_ids:
            del self._groups[key]
            for site in self.sites:
                self._account(MessageKind.SUBSCRIBE, _SERVER, self._name(site))
                site.drop_group(book.group_id)
            return
        q_min = self._q_min(book)
        for site in self.sites:
            self._account(MessageKind.SUBSCRIBE, _SERVER, self._name(site))
            site.register_group(book.group_id, q_min, book.preference)

    def queries(self) -> Dict[int, StandingQuery]:
        """The registered queries, by id."""
        return dict(self._queries)

    def _q_min(self, book: _GroupBook) -> float:
        return min(self._queries[qid].threshold for qid in book.query_ids)

    # ------------------------------------------------------------------
    # the data plane
    # ------------------------------------------------------------------

    def ingest(
        self, site_id: int, t: UncertainTuple, stamp: Optional[float] = None
    ) -> None:
        """Feed one stream arrival to one site (local, never billed)."""
        if not 0 <= site_id < len(self.sites):
            raise IndexError(f"no site {site_id} (have {len(self.sites)})")
        if t.key in self._seen_keys:
            raise ValueError(
                f"stream key {t.key} already live or previously seen; "
                f"stream keys must be unique"
            )
        self._seen_keys.add(t.key)
        self.sites[site_id].ingest(t, stamp)
        self.arrivals_this_epoch += 1
        self.arrivals_total += 1

    def advance(self, now: float) -> None:
        """Advance every site's clock (time-based windows expire)."""
        for site in self.sites:
            site.advance(now)

    def live_partitions(self) -> List[List[UncertainTuple]]:
        """Every site's live window contents (the fresh-run comparand)."""
        return [site.live_tuples() for site in self.sites]

    # ------------------------------------------------------------------
    # the control plane: one epoch close
    # ------------------------------------------------------------------

    def close_epoch(self) -> List[ResultDelta]:
        """Reconcile all standing results; returns the ordered deltas.

        Deltas are grouped by ascending query id; within one query,
        EXITs first (ascending key), then ENTER/RESCOREs in the result
        set's canonical order.
        """
        self.epoch += 1
        shipped = 0
        for key in sorted(self._groups, key=lambda k: self._groups[k].group_id):
            shipped += self._reconcile_group(self._groups[key])
        deltas: List[ResultDelta] = []
        for query_id in sorted(self._queries):
            deltas.extend(self._notify(query_id))
        self.stats.record_round(tuples_in_round=shipped)
        self.arrivals_this_epoch = 0
        return deltas

    def _reconcile_group(self, book: _GroupBook) -> int:
        """Digest, replicate, and re-score one preference group."""
        shipped = 0
        entered_by_site: Dict[int, List[Tuple[UncertainTuple, float]]] = {}
        departed: List[int] = []
        for site in self.sites:
            digest = site.close_epoch(book.group_id)
            for _t, _local in digest.entered:
                self._account(MessageKind.DELTA, self._name(site), _SERVER)
                shipped += 1
                self.candidates_shipped += 1
            if digest.rescored or digest.factors:
                self._account(
                    MessageKind.DELTA, self._name(site), _SERVER, tuples=0
                )
            for _key in digest.departed:
                self._account(MessageKind.EXPIRE, self._name(site), _SERVER)
            entered_by_site[site.site_id] = digest.entered
            departed.extend(digest.departed)
            for key, local in digest.rescored:
                book.pool[key].local = local
            for key, factor in digest.factors:
                entry = book.pool.get(key)
                if entry is not None:
                    entry.factors[site.site_id] = factor
        for key in departed:
            del book.pool[key]
        for site_id, entered in entered_by_site.items():
            for t, local in entered:
                book.pool[t.key] = _PoolEntry(t, site_id, local)
        # Replicate the new candidates outward; collect initial factors.
        for site in self.sites:
            payload = [
                t
                for site_id, entered in sorted(entered_by_site.items())
                for t, _local in entered
                if site_id != site.site_id
            ]
            removed = list(departed)
            if not payload and not removed:
                continue
            self._account(
                MessageKind.REPLICA_SYNC,
                _SERVER,
                self._name(site),
                tuples=len(payload),
            )
            self.replicas_shipped += len(payload)
            replies = site.sync_candidates(book.group_id, payload, removed)
            if payload:
                self._account(
                    MessageKind.DELTA, self._name(site), _SERVER, tuples=0
                )
            for key, factor in replies:
                entry = book.pool.get(key)
                if entry is not None:
                    entry.factors[site.site_id] = factor
        # The canonical product: origin-local score times the other
        # sites' factors in ascending site order — the exact multiply
        # order a fresh run uses, hence bit-identical probabilities.
        for entry in book.pool.values():
            probability = entry.local
            for site in self.sites:
                if site.site_id == entry.origin:
                    continue
                probability *= entry.factors[site.site_id]
            entry.probability = probability
        return shipped

    def _notify(self, query_id: int) -> List[ResultDelta]:
        query = self._queries[query_id]
        book = self._groups[_preference_key(query.preference)]
        members = [
            entry
            for entry in book.pool.values()
            if entry.probability >= query.threshold
        ]
        members.sort(key=lambda e: (-e.probability, e.tuple.key))
        if query.limit is not None:
            members = members[: query.limit]
        now: Dict[int, float] = {e.tuple.key: e.probability for e in members}
        previous = self._views[query_id]
        deltas: List[ResultDelta] = []
        for key in sorted(k for k in previous if k not in now):
            deltas.append(
                ResultDelta(query_id, self.epoch, DeltaKind.EXIT, key)
            )
        for entry in members:
            key = entry.tuple.key
            if key not in previous:
                deltas.append(
                    ResultDelta(
                        query_id,
                        self.epoch,
                        DeltaKind.ENTER,
                        key,
                        probability=entry.probability,
                        tuple=entry.tuple,
                    )
                )
            elif previous[key] != entry.probability:
                deltas.append(
                    ResultDelta(
                        query_id,
                        self.epoch,
                        DeltaKind.RESCORE,
                        key,
                        probability=entry.probability,
                        tuple=entry.tuple,
                    )
                )
        self._views[query_id] = now
        if deltas:
            self._account(
                MessageKind.NOTIFY, _SERVER, f"client-{query_id}", tuples=0
            )
        return deltas

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def result(self, query_id: int) -> ProbabilisticSkyline:
        """The standing result as of the last closed epoch."""
        query = self._queries[query_id]
        book = self._groups[_preference_key(query.preference)]
        view = self._views[query_id]
        members = [
            SkylineMember(book.pool[key].tuple, probability)
            for key, probability in view.items()
        ]
        return ProbabilisticSkyline(query.threshold, members)

    def _account(
        self,
        kind: MessageKind,
        sender: str,
        receiver: str,
        tuples: Optional[int] = None,
    ) -> None:
        self.stats.record(
            Message.bearing(kind, sender, receiver, payload=None, tuple_count=tuples)
        )

    @staticmethod
    def _name(site: StreamSite) -> str:
        return f"site-{site.site_id}"

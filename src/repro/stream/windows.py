"""Sliding-window policies for uncertain streams.

Every site of the continuous-query subsystem ingests an append-only
stream of :class:`~repro.core.tuples.UncertainTuple` arrivals and keeps
only the tuples its *window* considers live.  Three window kinds cover
the shapes the stream literature (and the edge pre-filtering paper the
subsystem follows) uses:

* :class:`CountWindow` — "the last ``capacity`` readings": a FIFO of
  fixed cardinality, stamps ignored.
* :class:`SlidingTimeWindow` — "the last ``span`` seconds": a tuple is
  live while ``now - stamp < span``; time advances with every arrival
  and explicitly via :meth:`~Window.advance`.
* :class:`TumblingTimeWindow` — contiguous ``span``-wide epochs; when a
  stamp crosses an epoch boundary the whole previous window flushes.

All windows preserve *arrival order* among their live tuples.  That is
load-bearing, not cosmetic: a site's standing engine stores the window
contents in arrival order, which is exactly the order a fresh
:class:`~repro.distributed.site.LocalSite` built over the same live
tuples would use — the foundation of the subsystem's bit-identical
epoch-equivalence contract (see docs/streaming.md).

Stamps must be non-decreasing per window; a regressing stamp raises
rather than silently reordering history.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from ..core.tuples import UncertainTuple

__all__ = [
    "Window",
    "CountWindow",
    "SlidingTimeWindow",
    "TumblingTimeWindow",
    "WINDOW_KINDS",
    "make_window",
]


class Window:
    """Base class: arrival-ordered live set with eviction on push/advance."""

    def __init__(self) -> None:
        self._live: Deque[Tuple[float, UncertainTuple]] = deque()
        self._clock: Optional[float] = None

    def _check_stamp(self, stamp: float) -> None:
        if self._clock is not None and stamp < self._clock:
            raise ValueError(
                f"stamp {stamp!r} regresses behind {self._clock!r}; "
                f"stream stamps must be non-decreasing"
            )
        self._clock = stamp

    def push(self, t: UncertainTuple, stamp: float) -> List[UncertainTuple]:
        """Admit one arrival; returns the tuples it evicted (oldest first)."""
        self._check_stamp(stamp)
        evicted = self._evict(stamp)
        self._live.append((stamp, t))
        return evicted

    def advance(self, now: float) -> List[UncertainTuple]:
        """Move time forward without an arrival; returns the expired tuples."""
        self._check_stamp(now)
        return self._evict(now)

    def live(self) -> List[UncertainTuple]:
        """The currently windowed tuples, in arrival order."""
        return [t for _stamp, t in self._live]

    def __len__(self) -> int:
        return len(self._live)

    def _evict(self, now: float) -> List[UncertainTuple]:
        raise NotImplementedError


class CountWindow(Window):
    """The last ``capacity`` arrivals; stamps are bookkeeping only."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        super().__init__()
        self.capacity = capacity

    def advance(self, now: float) -> List[UncertainTuple]:
        """Count windows only churn on arrivals; time passing is free."""
        self._check_stamp(now)
        return []

    def _evict(self, now: float) -> List[UncertainTuple]:
        out: List[UncertainTuple] = []
        while len(self._live) >= self.capacity:
            out.append(self._live.popleft()[1])
        return out


class SlidingTimeWindow(Window):
    """Tuples stay live while ``now - stamp < span``."""

    def __init__(self, span: float) -> None:
        if span <= 0:
            raise ValueError(f"span must be positive, got {span!r}")
        super().__init__()
        self.span = span

    def _evict(self, now: float) -> List[UncertainTuple]:
        out: List[UncertainTuple] = []
        horizon = now - self.span
        while self._live and self._live[0][0] <= horizon:
            out.append(self._live.popleft()[1])
        return out


class TumblingTimeWindow(Window):
    """Contiguous ``span``-wide epochs; a boundary crossing flushes all."""

    def __init__(self, span: float) -> None:
        if span <= 0:
            raise ValueError(f"span must be positive, got {span!r}")
        super().__init__()
        self.span = span
        self._bucket: Optional[int] = None

    def _evict(self, now: float) -> List[UncertainTuple]:
        bucket = int(now // self.span)
        if self._bucket is None:
            self._bucket = bucket
            return []
        if bucket == self._bucket:
            return []
        self._bucket = bucket
        out = [t for _stamp, t in self._live]
        self._live.clear()
        return out


#: Window kind name -> constructor taking the single size/span knob.
WINDOW_KINDS = {
    "count": CountWindow,
    "sliding-time": SlidingTimeWindow,
    "tumbling-time": TumblingTimeWindow,
}


def make_window(kind: str, size: float) -> Window:
    """Build a window by name: ``count`` takes a cardinality, the time
    kinds take a span."""
    if kind not in WINDOW_KINDS:
        raise ValueError(
            f"unknown window kind {kind!r}; expected one of {sorted(WINDOW_KINDS)}"
        )
    if kind == "count":
        return CountWindow(int(size))
    return WINDOW_KINDS[kind](size)  # type: ignore[no-any-return,operator]

"""The site-side engine of the continuous-query subsystem.

A :class:`StreamSite` wraps one sliding :class:`~repro.stream.windows.Window`
of uncertain stream arrivals and, per registered *preference group*
(all standing queries sharing one dominance preference), a standing
:class:`~repro.distributed.site.LocalSite` whose database always equals
the live window contents in arrival order.  Inserts and expiries route
through :meth:`LocalSite.insert_tuple` / :meth:`LocalSite.delete_tuple`,
so on the ``all_probs_table`` configuration every update lands as a
§5.4 :meth:`PartitionIndex.apply_insert` / ``apply_delete`` cell
invalidation instead of a rebuild.

At every epoch boundary the coordinator asks each site for a
:class:`StreamDigest` — the site's **edge pre-filter** output (after
arXiv 2008.07159's edge-side candidate reduction):

* only tuples whose *local* skyline probability reaches the group's
  minimum registered threshold are candidates at all — anything below
  ``q_min`` provably cannot enter any registered query's result, and
  is suppressed without ever touching the wire;
* a candidate ships its full tuple exactly once (``entered``); later
  local re-scores travel as key + probability (``rescored``, zero
  tuples under the paper's §3.2 bandwidth metric);
* for the replicated foreign candidates this site can influence, a
  probe factor is pushed only when its value actually changed
  (``factors``) — quiet windows cost nothing.

The default streaming :class:`~repro.distributed.site.SiteConfig`
(columnar, unindexed) recomputes local skylines and probes directly
from the window contents, which makes every digest value bit-identical
to what a fresh site built over the same live tuples would compute —
the property the epoch-equivalence suite pins end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.dominance import Preference
from ..core.tuples import UncertainTuple
from ..distributed.site import LocalSite, SiteConfig
from .windows import Window

__all__ = ["StreamDigest", "StreamSite", "streaming_site_config"]


def streaming_site_config() -> SiteConfig:
    """The default per-window engine configuration.

    Columnar and unindexed: every local skyline / probe is recomputed
    from the live window contents (lazily, cached until the next
    update), so digests are pure functions of the window — the
    bit-identity contract needs nothing else.  Pass an
    ``all_probs_table`` config instead to exercise the §5.4
    cell-invalidation path (exact to tolerance, not bitwise).
    """
    return SiteConfig(use_index=False, vectorized=True)


@dataclass
class StreamDigest:
    """One site's epoch delta for one preference group.

    ``entered`` bears one tuple each on the wire; ``rescored``,
    ``departed`` and ``factors`` are scalar traffic (zero tuples under
    the §3.2 metric).
    """

    site_id: int
    entered: List[Tuple[UncertainTuple, float]] = field(default_factory=list)
    rescored: List[Tuple[int, float]] = field(default_factory=list)
    departed: List[int] = field(default_factory=list)
    factors: List[Tuple[int, float]] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not (self.entered or self.rescored or self.departed or self.factors)


@dataclass
class _Group:
    """Per-preference-group standing state at one site."""

    threshold: float
    preference: Optional[Preference]
    engine: LocalSite
    #: key -> local skyline probability last shipped to the coordinator.
    shipped: Dict[int, float] = field(default_factory=dict)
    #: Foreign candidates replicated down by the coordinator.
    replicas: Dict[int, UncertainTuple] = field(default_factory=dict)
    #: key -> the probe factor last pushed for that replica.
    factors: Dict[int, float] = field(default_factory=dict)


class StreamSite:
    """One stream participant: a window plus per-group standing engines."""

    def __init__(
        self,
        site_id: int,
        window: Window,
        site_config: Optional[SiteConfig] = None,
    ) -> None:
        self.site_id = site_id
        self.window = window
        self.config = site_config or streaming_site_config()
        self._groups: Dict[int, _Group] = {}
        self._seq = 0

    # ------------------------------------------------------------------
    # the data plane: stream arrivals are local, never billed
    # ------------------------------------------------------------------

    def ingest(self, t: UncertainTuple, stamp: Optional[float] = None) -> None:
        """Admit one arrival; expiries it forces are applied first."""
        if stamp is None:
            stamp = float(self._seq)
        self._seq += 1
        evicted = self.window.push(t, stamp)
        for group in self._groups.values():
            for old in evicted:
                group.engine.delete_tuple(old.key)
            group.engine.insert_tuple(t)

    def advance(self, now: float) -> None:
        """Let time pass: expire without an arrival."""
        evicted = self.window.advance(now)
        for group in self._groups.values():
            for old in evicted:
                group.engine.delete_tuple(old.key)

    def live_tuples(self) -> List[UncertainTuple]:
        """The currently windowed tuples, in arrival order."""
        return self.window.live()

    # ------------------------------------------------------------------
    # the control plane: RPCs the ContinuousCoordinator issues
    # ------------------------------------------------------------------

    def register_group(
        self,
        group_id: int,
        threshold: float,
        preference: Optional[Preference] = None,
    ) -> None:
        """Create (or re-threshold) one preference group's engine.

        ``threshold`` is the group's minimum registered query threshold
        ``q_min`` — the edge pre-filter's suppression bound.  A fresh
        group seeds its engine from the current window contents, so
        mid-stream registrations see exactly the live state.
        """
        existing = self._groups.get(group_id)
        if existing is not None:
            existing.threshold = threshold
            return
        engine = LocalSite(
            site_id=self.site_id,
            database=self.window.live(),
            preference=preference,
            config=self.config,
        )
        self._groups[group_id] = _Group(
            threshold=threshold, preference=preference, engine=engine
        )

    def drop_group(self, group_id: int) -> None:
        """Forget one preference group entirely."""
        self._groups.pop(group_id, None)

    def close_epoch(self, group_id: int) -> StreamDigest:
        """The edge pre-filter: everything this epoch changed, nothing else."""
        group = self._groups[group_id]
        digest = StreamDigest(site_id=self.site_id)
        local: Dict[int, float] = {
            q.key: q.local_probability
            for q in group.engine.ship_local_skyline(group.threshold)
        }
        tuples = group.engine.database
        for key in sorted(local):
            probability = local[key]
            previous = group.shipped.get(key)
            if previous is None:
                digest.entered.append((tuples[key], probability))
            elif previous != probability:
                digest.rescored.append((key, probability))
        digest.departed = sorted(k for k in group.shipped if k not in local)
        group.shipped = local
        for key in sorted(group.replicas):
            factor = group.engine.probe(group.replicas[key])
            if group.factors.get(key) != factor:  # skylint: ignore[SKY301] bitwise on purpose: the exactness contract pushes a factor iff its bits changed
                group.factors[key] = factor
                digest.factors.append((key, factor))
        return digest

    def sync_candidates(
        self,
        group_id: int,
        entries: Sequence[UncertainTuple],
        removed: Sequence[int] = (),
    ) -> List[Tuple[int, float]]:
        """Install foreign candidate replicas; returns their probe factors.

        The coordinator calls this after collecting digests: newly
        entered candidates from *other* sites come down (one tuple each
        on the wire), candidates that departed anywhere are dropped,
        and the reply carries this site's initial Eq. 9 factor for each
        new entry (scalar traffic).
        """
        group = self._groups[group_id]
        for key in removed:
            group.replicas.pop(key, None)
            group.factors.pop(key, None)
        replies: List[Tuple[int, float]] = []
        for t in entries:
            group.replicas[t.key] = t
            factor = group.engine.probe(t)
            group.factors[t.key] = factor
            replies.append((t.key, factor))
        return replies

"""repro — Distributed Skyline Queries over Uncertain Data.

A from-scratch reproduction of Ding & Jin, *Efficient and Progressive
Algorithms for Distributed Skyline Queries over Uncertain Data*
(ICDCS 2010 / TKDE 2011): the DSUD and e-DSUD algorithms for answering
probabilistic threshold skyline queries over horizontally partitioned
uncertain databases with minimal communication, together with every
substrate they stand on — the uncertain data model, the Probabilistic
R-tree, centralized skyline algorithms, a simulated distributed
network with exact bandwidth accounting, workload generators, and
update maintenance.

Quickstart::

    from repro import make_synthetic_workload, distributed_skyline

    wl = make_synthetic_workload("anticorrelated", n=5000, d=3, sites=8, seed=7)
    result = distributed_skyline(wl.partitions, threshold=0.3, algorithm="edsud")
    print(result.summary())
    for member in result.answer:
        print(member.tuple, member.probability)
"""

from .core import (
    Direction,
    Preference,
    ProbabilisticSkyline,
    SkylineMember,
    UncertainTuple,
    dominates,
    expected_skyline_cardinality,
    make_tuples,
    prob_skyline_brute_force,
    prob_skyline_sfs,
    skyline,
    skyline_probability,
    tuples_from_arrays,
)
from .data import (
    Workload,
    load_tuples,
    make_nyse_workload,
    make_synthetic_workload,
    nyse_preference,
    save_tuples,
)
from .distributed import (
    ALGORITHMS,
    DSUD,
    EDSUD,
    EDSUDConfig,
    IncrementalMaintainer,
    LocalSite,
    NaiveLocalSkylines,
    NaiveMaintainer,
    RunResult,
    ShipAllBaseline,
    SiteConfig,
    adistributed_skyline,
    build_coordinator,
    build_sites,
    distributed_skyline,
    vertical_skyline,
)
from .index import PRTree, bbs_prob_skyline
from .net import LatencyModel
from .replica import ReplicaManager, assign_buddies

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "UncertainTuple",
    "make_tuples",
    "tuples_from_arrays",
    "Direction",
    "Preference",
    "dominates",
    "skyline",
    "skyline_probability",
    "SkylineMember",
    "ProbabilisticSkyline",
    "prob_skyline_brute_force",
    "prob_skyline_sfs",
    "expected_skyline_cardinality",
    # index
    "PRTree",
    "bbs_prob_skyline",
    # data
    "Workload",
    "make_synthetic_workload",
    "make_nyse_workload",
    "nyse_preference",
    # distributed
    "LocalSite",
    "SiteConfig",
    "DSUD",
    "EDSUD",
    "EDSUDConfig",
    "NaiveLocalSkylines",
    "ShipAllBaseline",
    "RunResult",
    "ALGORITHMS",
    "build_sites",
    "build_coordinator",
    "distributed_skyline",
    "adistributed_skyline",
    "IncrementalMaintainer",
    "NaiveMaintainer",
    "vertical_skyline",
    # data io
    "load_tuples",
    "save_tuples",
    # net
    "LatencyModel",
    # replica
    "ReplicaManager",
    "assign_buddies",
]

"""Dominance tests, preference directions, and subspace projection.

The paper defines dominance for *minimisation* on every attribute: ``t
≺ s`` iff ``t`` is no larger than ``s`` everywhere and strictly smaller
somewhere (§3.1).  Real applications mix directions — the stock
example of the introduction prefers a *low* price but a *high* volume —
and §4 notes the whole framework extends to any user-chosen subspace of
``k ≤ d`` attributes.  Both generalisations live here as a
:class:`Preference` object that every algorithm in the library accepts.

A ``Preference`` is normalised once into a tuple of ``(dim, sign)``
pairs so the hot dominance loop stays a couple of comparisons per
dimension with no per-call branching on configuration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from .tuples import UncertainTuple

__all__ = [
    "Direction",
    "Preference",
    "dominates",
    "dominates_values",
    "strictly_dominates_region",
]


class Direction(enum.Enum):
    """Optimisation direction of a single attribute."""

    MIN = "min"
    MAX = "max"

    @property
    def sign(self) -> float:
        """Multiplier mapping the attribute into minimisation space."""
        return 1.0 if self is Direction.MIN else -1.0


@dataclass(frozen=True)
class Preference:
    """A dominance specification: per-dimension directions plus a subspace.

    Parameters
    ----------
    directions:
        One :class:`Direction` per *original* dimension.  ``None`` means
        minimise everything (the paper's convention).
    subspace:
        Indices of the dimensions dominance is evaluated on, in any
        order; ``None`` means the full space.  Checking dominance on a
        subspace is exactly the paper's §4 extension: simply ignore the
        other attributes.

    Instances are immutable and cheap to share between sites.
    """

    directions: Optional[Tuple[Direction, ...]] = None
    subspace: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.directions is not None:
            object.__setattr__(self, "directions", tuple(self.directions))
        if self.subspace is not None:
            dims = tuple(self.subspace)
            if len(dims) == 0:
                raise ValueError("a subspace preference needs at least one dimension")
            if len(set(dims)) != len(dims):
                raise ValueError(f"subspace {dims} repeats a dimension")
            if any(d < 0 for d in dims):
                raise ValueError(f"subspace {dims} has a negative dimension index")
            object.__setattr__(self, "subspace", dims)

    @classmethod
    def minimize(cls, dimensionality: int) -> "Preference":
        """The paper's default: minimise every one of ``dimensionality`` attrs."""
        return cls(directions=tuple(Direction.MIN for _ in range(dimensionality)))

    @classmethod
    def of(cls, spec: str) -> "Preference":
        """Build a preference from a compact string such as ``"min,max"``.

        >>> Preference.of("min,max").directions
        (<Direction.MIN: 'min'>, <Direction.MAX: 'max'>)
        """
        parts = [p.strip().lower() for p in spec.split(",")]
        dirs = []
        for p in parts:
            if p not in ("min", "max"):
                raise ValueError(f"unknown direction {p!r}; expected 'min' or 'max'")
            dirs.append(Direction.MIN if p == "min" else Direction.MAX)
        return cls(directions=tuple(dirs))

    def effective_dims(self, dimensionality: int) -> Tuple[int, ...]:
        """The dimension indices dominance is evaluated on."""
        if self.subspace is None:
            return tuple(range(dimensionality))
        for dim in self.subspace:
            if dim >= dimensionality:
                raise ValueError(
                    f"subspace dimension {dim} out of range for d={dimensionality}"
                )
        return self.subspace

    def signs(self, dimensionality: int) -> Tuple[float, ...]:
        """Per-original-dimension signs mapping values into min-space."""
        if self.directions is None:
            return tuple(1.0 for _ in range(dimensionality))
        if len(self.directions) != dimensionality:
            raise ValueError(
                f"preference has {len(self.directions)} directions "
                f"but data has {dimensionality} dimensions"
            )
        return tuple(d.sign for d in self.directions)

    def plan(self, dimensionality: int) -> Tuple[Tuple[int, float], ...]:
        """Normalised ``(dim, sign)`` pairs for the dominance hot loop."""
        signs = self.signs(dimensionality)
        return tuple((dim, signs[dim]) for dim in self.effective_dims(dimensionality))

    def to_dict(self) -> dict:
        """JSON-compatible form (see :meth:`from_dict`)."""
        return {
            "directions": [d.value for d in self.directions]
            if self.directions is not None
            else None,
            "subspace": list(self.subspace) if self.subspace is not None else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Preference":
        directions = (
            tuple(Direction(v) for v in data["directions"])
            if data.get("directions") is not None
            else None
        )
        subspace = (
            tuple(int(v) for v in data["subspace"])
            if data.get("subspace") is not None
            else None
        )
        return cls(directions=directions, subspace=subspace)

    def project(self, values: Sequence[float]) -> Tuple[float, ...]:
        """Map raw attribute values into canonical min-space coordinates.

        Applies the direction signs and drops dimensions outside the
        subspace.  After projection, plain min-dominance on the result
        is equivalent to preference dominance on the original values —
        this is how the R-tree layer supports arbitrary preferences
        without preference-aware geometry.
        """
        signs = self.signs(len(values))
        return tuple(values[dim] * signs[dim] for dim in self.effective_dims(len(values)))


def dominates_values(
    a: Sequence[float],
    b: Sequence[float],
    preference: Optional[Preference] = None,
) -> bool:
    """Return True iff value vector ``a`` dominates ``b``.

    With no preference this is the paper's definition: ``a ≤ b`` on
    every dimension with at least one strict ``<``.
    """
    if len(a) != len(b):
        raise ValueError(f"dimensionality mismatch: {len(a)} vs {len(b)}")
    if preference is None:
        strict = False
        for x, y in zip(a, b):
            if x > y:
                return False
            if x < y:
                strict = True
        return strict
    strict = False
    for dim, sign in preference.plan(len(a)):
        x = a[dim] * sign
        y = b[dim] * sign
        if x > y:
            return False
        if x < y:
            strict = True
    return strict


def dominates(
    a: UncertainTuple,
    b: UncertainTuple,
    preference: Optional[Preference] = None,
) -> bool:
    """Return True iff tuple ``a`` dominates tuple ``b`` (``a ≺ b``)."""
    return dominates_values(a.values, b.values, preference)


def strictly_dominates_region(
    point: Sequence[float],
    lower: Sequence[float],
    upper: Sequence[float],
) -> bool:
    """True iff ``point`` dominates *every* point of the box ``[lower, upper]``.

    Used by index-level pruning: if a seen object dominates a node's
    whole MBR, every tuple in that subtree inherits the object's
    non-occurrence factor.  ``point`` must be ≤ ``lower`` on every
    dimension and < on at least one — the strict dimension guarantees
    strictness against every box point, including ``lower`` itself.

    All coordinates are assumed to already live in canonical min-space
    (see :meth:`Preference.project`).
    """
    strict = False
    for p, lo in zip(point, lower):
        if p > lo:
            return False
        if p < lo:
            strict = True
    return strict

"""Centralized probabilistic skyline computation.

Given an uncertain database and a threshold ``q``, the *probabilistic
skyline* is ``{ t : P_sky(t, D) ≥ q }`` with ``P_sky`` per Eq. 3.  Two
unindexed algorithms live here; the PR-tree-accelerated one (the
paper's §6.2) lives in :mod:`repro.index.bbs` next to the index it
needs.

* :func:`prob_skyline_brute_force` — the §3.2 baseline: ``O(N)`` per
  tuple, ``O(N²)`` total, no shortcuts.  The correctness oracle.
* :func:`prob_skyline_sfs` — processes tuples in a monotone
  (coordinate-sum) order so all dominators of a tuple precede it, and
  abandons a tuple as soon as its running product proves it below
  ``q``.  Same worst case, far fewer dominance tests in practice.

Both return :class:`ProbabilisticSkyline`, which also powers the
distributed layers' result reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from .dominance import Preference
from .probability import non_occurrence_product, skyline_probability
from .tuples import UncertainTuple

__all__ = [
    "SkylineMember",
    "ProbabilisticSkyline",
    "prob_skyline_brute_force",
    "prob_skyline_sfs",
    "all_skyline_probabilities",
]


@dataclass(frozen=True)
class SkylineMember:
    """One qualified tuple together with its skyline probability."""

    tuple: UncertainTuple
    probability: float

    @property
    def key(self) -> int:
        return self.tuple.key


@dataclass
class ProbabilisticSkyline:
    """An answer set: qualified tuples, ordered by descending probability.

    Supports the operations tests and benchmarks use most — membership
    by key, comparison with another answer up to float tolerance, and
    iteration in probability order.
    """

    threshold: float
    members: List[SkylineMember] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.members = sorted(
            self.members, key=lambda m: (-m.probability, m.key)
        )

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self) -> Iterator[SkylineMember]:
        return iter(self.members)

    def keys(self) -> List[int]:
        return [m.key for m in self.members]

    def probabilities(self) -> Dict[int, float]:
        return {m.key: m.probability for m in self.members}

    def __contains__(self, key: int) -> bool:
        return any(m.key == key for m in self.members)

    def agrees_with(self, other: "ProbabilisticSkyline", tol: float = 1e-9) -> bool:
        """True iff both answers qualify the same keys with matching probabilities."""
        mine = self.probabilities()
        theirs = other.probabilities()
        if set(mine) != set(theirs):
            return False
        return all(abs(mine[k] - theirs[k]) <= tol for k in mine)


def all_skyline_probabilities(
    database: Sequence[UncertainTuple], preference: Optional[Preference] = None
) -> Dict[int, float]:
    """Eq. 3 evaluated for every tuple; the quadratic reference computation."""
    return {
        t.key: skyline_probability(t, database, preference) for t in database
    }


def prob_skyline_brute_force(
    database: Sequence[UncertainTuple],
    threshold: float,
    preference: Optional[Preference] = None,
) -> ProbabilisticSkyline:
    """The baseline quadratic algorithm over a centralized database."""
    _check_threshold(threshold)
    members = []
    for t in database:
        p = skyline_probability(t, database, preference)
        if p >= threshold:
            members.append(SkylineMember(t, p))
    return ProbabilisticSkyline(threshold, members)


def prob_skyline_sfs(
    database: Sequence[UncertainTuple],
    threshold: float,
    preference: Optional[Preference] = None,
) -> ProbabilisticSkyline:
    """Sort-first probabilistic skyline with threshold early exit.

    Tuples are visited in ascending canonical coordinate-sum order, so
    each tuple's dominators all precede it.  A tuple whose existential
    probability is already below ``q`` is skipped without any dominance
    tests (its skyline probability cannot exceed ``P(t)``), and the
    dominator scan for the rest stops the moment the running product
    sinks below ``q / P(t)``.
    """
    _check_threshold(threshold)
    if not database:
        return ProbabilisticSkyline(threshold, [])
    if preference is None:
        keyed = [(t.coordinate_sum(), t) for t in database]
    else:
        keyed = [(sum(preference.project(t.values)), t) for t in database]
    keyed.sort(key=lambda pair: pair[0])
    ordered = [t for _, t in keyed]
    members = []
    for i, t in enumerate(ordered):
        if t.probability < threshold:
            continue
        floor = threshold / t.probability
        # Dominators all precede t in the monotone order, so the prefix
        # is a sufficient database; the helper's floor gives the same
        # early exit as the classic inline break, in the same
        # multiplication order.
        product = non_occurrence_product(t, ordered[:i], preference, floor=floor)
        if product >= floor:
            members.append(SkylineMember(t, t.probability * product))
    return ProbabilisticSkyline(threshold, members)


def _check_threshold(threshold: float) -> None:
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold q must be in (0, 1], got {threshold!r}")

"""Centralized skyline algorithms for certain (precise) data.

The distributed machinery repeatedly needs a conventional skyline —
the server computes ``SKY(D_0)`` over the representatives it has
gathered, the possible-world oracle needs per-world skylines, and the
generators use skyline size for sanity checks.  Three classic
algorithms are provided; all take the same arguments and return tuples
in input order:

* :func:`block_nested_loop` — Börzsönyi et al.'s BNL, the robust
  default for unsorted input.
* :func:`sort_filter_skyline` — SFS: sort by a monotone function
  (coordinate sum in min-space) so every tuple can only be dominated by
  tuples already in the window; a single pass then suffices.
* :func:`divide_and_conquer` — the textbook D&C scheme; mostly of
  interest for cross-validation and as the asymptotically strongest
  choice at high dimensionality.

:func:`skyline` picks SFS, the best all-rounder here.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .dominance import Preference, dominates
from .tuples import UncertainTuple

__all__ = [
    "skyline",
    "block_nested_loop",
    "sort_filter_skyline",
    "divide_and_conquer",
]


def skyline(
    tuples: Sequence[UncertainTuple], preference: Optional[Preference] = None
) -> List[UncertainTuple]:
    """The conventional skyline of ``tuples``; dispatches to SFS."""
    return sort_filter_skyline(tuples, preference)


def block_nested_loop(
    tuples: Sequence[UncertainTuple], preference: Optional[Preference] = None
) -> List[UncertainTuple]:
    """Block-nested-loop skyline.

    Maintains a window of incomparable tuples; each incoming tuple is
    checked against the window, evicting window members it dominates
    and being discarded if any member dominates it.
    """
    window: List[UncertainTuple] = []
    for t in tuples:
        dominated = False
        survivors: List[UncertainTuple] = []
        for w in window:
            if dominates(w, t, preference):
                dominated = True
                survivors = window  # keep the window untouched
                break
            if not dominates(t, w, preference):
                survivors.append(w)
        if not dominated:
            survivors.append(t)
        window = survivors
    order = {t.key: i for i, t in enumerate(tuples)}
    window.sort(key=lambda t: order[t.key])
    return window


def sort_filter_skyline(
    tuples: Sequence[UncertainTuple], preference: Optional[Preference] = None
) -> List[UncertainTuple]:
    """Sort-Filter-Skyline.

    Sorting by the coordinate sum in canonical min-space is a monotone
    (topological) order for dominance: a dominator always sorts
    strictly earlier, so one pass against the accumulating skyline
    window is enough and window members never need eviction.
    """
    if not tuples:
        return []
    if preference is None:
        keyed = [(t.coordinate_sum(), t) for t in tuples]
    else:
        keyed = [(sum(preference.project(t.values)), t) for t in tuples]
    keyed.sort(key=lambda pair: pair[0])
    window: List[UncertainTuple] = []
    for _, t in keyed:
        if not any(dominates(w, t, preference) for w in window):
            window.append(t)
    order = {t.key: i for i, t in enumerate(tuples)}
    window.sort(key=lambda t: order[t.key])
    return window


def divide_and_conquer(
    tuples: Sequence[UncertainTuple],
    preference: Optional[Preference] = None,
    base_size: int = 32,
) -> List[UncertainTuple]:
    """Divide-and-conquer skyline.

    Splits on the median of the first effective dimension, recursively
    computes both halves' skylines, and merges by re-running BNL over
    the (small) union — robust against value ties straddling the median
    boundary, where a high-half tuple can still dominate a low-half
    one.  Small partitions fall back to BNL directly.
    """
    if not tuples:
        return []
    d = tuples[0].dimensionality
    dims = preference.effective_dims(d) if preference is not None else tuple(range(d))
    signs = preference.signs(d) if preference is not None else tuple(1.0 for _ in range(d))
    split_dim = dims[0]
    sign = signs[split_dim]

    def recurse(items: List[UncertainTuple]) -> List[UncertainTuple]:
        if len(items) <= base_size:
            return block_nested_loop(items, preference)
        items = sorted(items, key=lambda t: t.values[split_dim] * sign)
        mid = len(items) // 2
        low = recurse(items[:mid])
        high = recurse(items[mid:])
        return block_nested_loop(low + high, preference)

    result = recurse(list(tuples))
    order = {t.key: i for i, t in enumerate(tuples)}
    result.sort(key=lambda t: order[t.key])
    return result

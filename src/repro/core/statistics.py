"""Relation profiling: the numbers that predict skyline behaviour.

Before running distributed queries over a new data set, one wants to
know what to expect: how heavy is the skyline, how deep do its layers
go, how do the dimensions relate, how is the uncertainty distributed?
This module computes those profiles — they power the CLI's ``info``
command, the sanity checks in the generators' tests, and any capacity
planning done with :mod:`repro.distributed.advisor`.

* :func:`probability_profile` — moments and a histogram of the
  existential probabilities.
* :func:`dimension_correlations` — pairwise Pearson correlations (the
  independent/correlated/anticorrelated signature).
* :func:`skyline_layers` — the onion decomposition: layer 1 is the
  conventional skyline, layer 2 the skyline of what remains, and so
  on.  Probabilistic threshold skylines live almost entirely in the
  first few layers (a tuple in layer L has ≥ L−1 dominators), which
  :func:`layer_of_qualified` quantifies.
* :func:`dominance_profile` — sampled dominated-counts per tuple, the
  quantity that drives every pruning bound in the system.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .dominance import Preference, dominates
from .prob_skyline import prob_skyline_sfs
from .skyline import sort_filter_skyline
from .tuples import UncertainTuple

__all__ = [
    "ProbabilityProfile",
    "probability_profile",
    "dimension_correlations",
    "skyline_layers",
    "layer_of_qualified",
    "dominance_profile",
]


@dataclass(frozen=True)
class ProbabilityProfile:
    """Summary of the existential-probability distribution."""

    count: int
    minimum: float
    mean: float
    maximum: float
    histogram: Tuple[int, ...]  # equal-width bins over (0, 1]

    @property
    def bins(self) -> int:
        return len(self.histogram)


def probability_profile(
    tuples: Sequence[UncertainTuple], bins: int = 10
) -> ProbabilityProfile:
    """Moments + an equal-width histogram of ``P(t)`` over ``(0, 1]``."""
    if bins < 1:
        raise ValueError("need at least one bin")
    if not tuples:
        return ProbabilityProfile(0, 0.0, 0.0, 0.0, tuple(0 for _ in range(bins)))
    probs = [t.probability for t in tuples]
    counts = [0] * bins
    for p in probs:
        counts[min(bins - 1, int(p * bins))] += 1
    return ProbabilityProfile(
        count=len(probs),
        minimum=min(probs),
        mean=sum(probs) / len(probs),
        maximum=max(probs),
        histogram=tuple(counts),
    )


def dimension_correlations(tuples: Sequence[UncertainTuple]) -> List[List[float]]:
    """Pairwise Pearson correlation matrix of the attribute values."""
    import numpy as np

    if not tuples:
        return []
    values = np.array([t.values for t in tuples], dtype=float)
    if values.shape[0] < 2:
        d = values.shape[1]
        return [[1.0 if i == j else 0.0 for j in range(d)] for i in range(d)]
    with np.errstate(invalid="ignore"):
        corr = np.corrcoef(values.T)
    corr = np.nan_to_num(np.atleast_2d(corr), nan=0.0)
    out = corr.tolist()
    for i in range(len(out)):
        out[i][i] = 1.0
    return out


def skyline_layers(
    tuples: Sequence[UncertainTuple],
    preference: Optional[Preference] = None,
    max_layers: Optional[int] = None,
) -> List[List[UncertainTuple]]:
    """The onion decomposition: peel conventional skylines repeatedly.

    Layer ``k`` (1-based) is the skyline of everything not in layers
    ``1 … k−1``; every tuple lands in exactly one layer.  ``max_layers``
    truncates the peeling (the remainder is simply not returned).
    """
    remaining = list(tuples)
    layers: List[List[UncertainTuple]] = []
    while remaining and (max_layers is None or len(layers) < max_layers):
        layer = sort_filter_skyline(remaining, preference)
        layer_keys = {t.key for t in layer}
        layers.append(layer)
        remaining = [t for t in remaining if t.key not in layer_keys]
    return layers


def layer_of_qualified(
    tuples: Sequence[UncertainTuple],
    threshold: float,
    preference: Optional[Preference] = None,
) -> Dict[int, int]:
    """How deep into the onion the qualified tuples sit.

    Returns ``{layer_index (1-based): count of qualified tuples}`` —
    empirically concentrated in the first handful of layers, since a
    layer-L tuple carries at least L−1 dominator factors.
    """
    qualified = {m.key for m in prob_skyline_sfs(tuples, threshold, preference)}
    out: Dict[int, int] = {}
    for i, layer in enumerate(skyline_layers(tuples, preference), start=1):
        hits = sum(1 for t in layer if t.key in qualified)
        if hits:
            out[i] = hits
        if sum(out.values()) == len(qualified):
            break
    return out


def dominance_profile(
    tuples: Sequence[UncertainTuple],
    preference: Optional[Preference] = None,
    sample: int = 200,
    rng: Optional[random.Random] = None,
) -> Dict[str, float]:
    """Sampled dominated-count statistics.

    For ``sample`` random tuples, count how many others dominate each;
    reports mean/max and the fraction with no dominators at all.  On
    independent uniform data the mean is ≈ N/2^d — the quantity that
    makes threshold pruning effective.
    """
    if not tuples:
        return {"sampled": 0, "mean_dominators": 0.0, "max_dominators": 0.0,
                "undominated_fraction": 0.0}
    rng = rng or random.Random(0)
    chosen = tuples if len(tuples) <= sample else rng.sample(list(tuples), sample)
    counts = []
    for target in chosen:
        counts.append(
            sum(
                1
                for other in tuples
                if other.key != target.key and dominates(other, target, preference)
            )
        )
    return {
        "sampled": float(len(chosen)),
        "mean_dominators": sum(counts) / len(counts),
        "max_dominators": float(max(counts)),
        "undominated_fraction": sum(1 for c in counts if c == 0) / len(counts),
    }

"""Possible-world semantics: the ground-truth oracle for every probability.

An uncertain database of ``N`` independent tuples induces ``2^N``
possible worlds; world ``W`` appears with probability

    P(W) = ∏_{t ∈ W} P(t) × ∏_{t ∉ W} (1 − P(t))          (Eq. 1)

and the skyline probability of a tuple is the total probability of the
worlds whose (conventional) skyline contains it (Eq. 2).  The paper
collapses that sum into the closed form of Eq. 3; this module keeps the
*uncollapsed* semantics alive so tests can verify the closed form, plus
a Monte-Carlo sampler usable when exhaustive enumeration is infeasible.

Exhaustive enumeration is exponential and deliberately guarded — it is
a validation oracle, not a query engine.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .dominance import Preference, dominates
from .tuples import UncertainTuple

__all__ = [
    "world_probability",
    "enumerate_worlds",
    "conventional_skyline",
    "skyline_probabilities_exhaustive",
    "skyline_probabilities_monte_carlo",
]

#: Refuse exhaustive enumeration beyond this many tuples (2^22 worlds).
MAX_EXHAUSTIVE = 22


def world_probability(
    world: Iterable[UncertainTuple], database: Sequence[UncertainTuple]
) -> float:
    """Probability of one possible world per Eq. 1."""
    present = {t.key for t in world}
    p = 1.0
    for t in database:
        p *= t.probability if t.key in present else (1.0 - t.probability)  # skylint: ignore[SKY302] Eq. 1 oracle: the uncollapsed definition itself
    return p


def enumerate_worlds(
    database: Sequence[UncertainTuple],
) -> Iterator[Tuple[Tuple[UncertainTuple, ...], float]]:
    """Yield every possible world with its probability.

    Worlds are produced lazily; probabilities over a full iteration sum
    to 1 (a tested invariant).  Raises :class:`ValueError` when the
    database is too large to enumerate.
    """
    n = len(database)
    if n > MAX_EXHAUSTIVE:
        raise ValueError(
            f"refusing to enumerate 2^{n} possible worlds; "
            f"use skyline_probabilities_monte_carlo instead"
        )
    for mask in itertools.product((False, True), repeat=n):
        world = tuple(t for t, present in zip(database, mask) if present)
        p = 1.0
        for t, present in zip(database, mask):
            p *= t.probability if present else (1.0 - t.probability)  # skylint: ignore[SKY302] Eq. 1 oracle: the uncollapsed definition itself
        yield world, p


def conventional_skyline(
    tuples: Sequence[UncertainTuple], preference: Optional[Preference] = None
) -> List[UncertainTuple]:
    """The certain-data skyline of a world: tuples dominated by nobody.

    Quadratic on purpose — this is the semantic definition used by the
    oracle, not a performance path (see :mod:`repro.core.skyline` for
    the real algorithms).
    """
    result = []
    for t in tuples:
        if not any(dominates(other, t, preference) for other in tuples if other.key != t.key):
            result.append(t)
    return result


def skyline_probabilities_exhaustive(
    database: Sequence[UncertainTuple], preference: Optional[Preference] = None
) -> Dict[int, float]:
    """Skyline probability of every tuple straight from Eq. 2.

    Sums ``P(W)`` over all worlds whose skyline contains the tuple.
    Exponential; intended for validating the closed form on small
    instances.
    """
    totals: Dict[int, float] = {t.key: 0.0 for t in database}
    for world, p in enumerate_worlds(database):
        for t in conventional_skyline(world, preference):
            totals[t.key] += p
    return totals


def skyline_probabilities_monte_carlo(
    database: Sequence[UncertainTuple],
    samples: int = 10_000,
    preference: Optional[Preference] = None,
    rng: Optional[random.Random] = None,
) -> Dict[int, float]:
    """Estimate skyline probabilities by sampling possible worlds.

    Draws ``samples`` independent worlds (each tuple keeps its own
    Bernoulli coin) and returns the fraction of sampled worlds in which
    each tuple was a skyline member.  Standard error per tuple is at
    most ``0.5 / sqrt(samples)``.

    Deterministic by default (a fixed seed-0 generator); pass ``rng``
    to vary the sample.
    """
    if rng is None:
        rng = random.Random(0)
    counts: Dict[int, float] = {t.key: 0 for t in database}
    for _ in range(samples):
        world = [t for t in database if rng.random() < t.probability]
        for t in conventional_skyline(world, preference):
            counts[t.key] += 1
    return {key: c / samples for key, c in counts.items()}

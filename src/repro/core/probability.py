"""Closed-form skyline-probability arithmetic (Eqs. 3, 5, 9–12).

Everything the DSUD/e-DSUD machinery needs to manipulate skyline
probabilities lives here, in one dependency-free module:

* :func:`non_occurrence_product` — ``∏ (1 − P(t'))`` over the tuples
  that dominate a target, with optional early exit once the running
  product falls below a floor (the pruning trick every threshold
  algorithm in the paper relies on).
* :func:`skyline_probability` — Eq. 3, a tuple's skyline probability
  within its *own* database (includes the ``P(t)`` factor).
* :func:`foreign_skyline_probability` — Eq. 9 / Observation 1, the
  factor a database contributes for a tuple it does *not* contain.
* :func:`combine_site_factors` — Lemma 1: the global skyline
  probability is the product of per-site factors.
* :func:`observation2_bound` and :func:`corollary2_bound` — the
  zero-bandwidth upper bounds that power e-DSUD's feedback selection.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from .dominance import Preference, dominates
from .tuples import UncertainTuple

__all__ = [
    "non_occurrence_product",
    "product_of_non_occurrence",
    "skyline_probability",
    "foreign_skyline_probability",
    "global_skyline_probability",
    "combine_site_factors",
    "feedback_pruning_bound",
    "observation2_bound",
    "corollary2_bound",
]


def non_occurrence_product(
    target: UncertainTuple,
    database: Iterable[UncertainTuple],
    preference: Optional[Preference] = None,
    floor: float = 0.0,
) -> float:
    """``∏_{t' ∈ database, t' ≺ target} (1 − P(t'))``.

    ``floor`` enables early termination: once the running product drops
    below it the exact value can no longer matter to a threshold test,
    so the current (upper-bounding) partial product is returned
    immediately.  Callers comparing against a threshold ``q`` pass
    ``floor=q``; callers needing the exact value keep the default 0.
    """
    product = 1.0
    for t in database:
        if t.key == target.key:
            continue
        if dominates(t, target, preference):
            product *= 1.0 - t.probability
            if product < floor:
                return product
    return product


def product_of_non_occurrence(
    probabilities: Iterable[float], floor: float = 0.0
) -> float:
    """``∏ (1 − p)`` over bare probabilities, in iteration order.

    The scalar sibling of :func:`non_occurrence_product` for callers
    that have already selected the dominating tuples (TA-style vertical
    sites, pruning prechecks over replicas) and hold only their
    existential probabilities.  ``floor`` gives the same early exit:
    once the running product drops below it, the partial (upper-bounding)
    product is returned immediately.
    """
    product = 1.0
    for p in probabilities:
        product *= 1.0 - p
        if product < floor:
            return product
    return product


def skyline_probability(
    target: UncertainTuple,
    database: Iterable[UncertainTuple],
    preference: Optional[Preference] = None,
    floor: float = 0.0,
) -> float:
    """Eq. 3: ``P_sky(t, D) = P(t) × ∏_{t'∈D, t'≺t}(1 − P(t'))``.

    ``database`` may or may not physically contain ``target``; the
    target itself is skipped by key, so passing the full relation is
    always safe.  With a nonzero ``floor`` the result is exact whenever
    it is ≥ ``floor`` and otherwise merely guaranteed to be < ``floor``.
    """
    if target.probability <= 0.0:
        return 0.0
    inner_floor = floor / target.probability if floor > 0.0 else 0.0
    return target.probability * non_occurrence_product(
        target, database, preference, floor=inner_floor
    )


def foreign_skyline_probability(
    target: UncertainTuple,
    database: Iterable[UncertainTuple],
    preference: Optional[Preference] = None,
    floor: float = 0.0,
) -> float:
    """Eq. 9 / Observation 1: the factor of a database not owning ``target``.

    Identical to :func:`non_occurrence_product`; the separate name
    mirrors the paper's notation ``P_sky(t_ij, D_x)`` for ``x ≠ i`` and
    keeps call sites self-documenting.
    """
    return non_occurrence_product(target, database, preference, floor=floor)


def global_skyline_probability(
    target: UncertainTuple,
    databases: Sequence[Sequence[UncertainTuple]],
    preference: Optional[Preference] = None,
) -> float:
    """Eq. 4/5 evaluated directly over the partitioned databases.

    The reference implementation of the *definition* — the distributed
    algorithms must agree with this (Lemma 1 guarantees they do).
    """
    product = target.probability
    for db in databases:
        product *= non_occurrence_product(target, db, preference)
    return product


def combine_site_factors(own_factor: float, foreign_factors: Iterable[float]) -> float:
    """Lemma 1: ``P_g-sky(t) = P_sky(t, D_i) × ∏_{x≠i} P_sky(t, D_x)``."""
    product = own_factor
    for f in foreign_factors:
        product *= f
    return product


def feedback_pruning_bound(
    candidate_local_probability: float,
    dominating_feedback: Iterable[UncertainTuple],
    floor: float = 0.0,
) -> float:
    """Upper bound used by the Local-Pruning phase.

    A site holding candidate ``s`` with own-site probability
    ``P_sky(s, D_x)`` that has received feedback tuples ``F`` (all from
    *other* sites) knows

        P_g-sky(s) ≤ P_sky(s, D_x) × ∏_{f ∈ F, f ≺ s} (1 − P(f))

    because each dominating foreign feedback tuple contributes its
    non-occurrence factor to some other site's term in Lemma 1.  The
    caller is responsible for passing only the feedback tuples that
    dominate ``s``.  A nonzero ``floor`` (typically the threshold
    ``q``) stops the accumulation as soon as the bound provably fails
    it; the returned partial product is still a valid upper bound.
    """
    bound = candidate_local_probability
    for f in dominating_feedback:
        bound *= 1.0 - f.probability
        if bound < floor:
            return bound
    return bound


def observation2_bound(
    dominator_local_probability: float, dominator_existential: float
) -> float:
    """Observation 2: bound on ``P_sky(s, D_x)`` given a dominator from ``D_x``.

    If tuple ``t ∈ D_x`` with own-site probability
    ``P_sky(t, D_x) = dominator_local_probability`` and existential
    probability ``P(t) = dominator_existential`` dominates ``s``, then

        P_sky(s, D_x) ≤ P_sky(t, D_x) / P(t) × (1 − P(t))

    — ``s`` inherits every dominator of ``t`` (transitivity) plus ``t``
    itself, and dropping the remaining ``s``-only dominators only
    loosens the bound.
    """
    if dominator_existential <= 0.0:
        raise ValueError("dominator existential probability must be positive")
    return (
        dominator_local_probability / dominator_existential
    ) * (1.0 - dominator_existential)


def corollary2_bound(
    candidate: UncertainTuple,
    candidate_site: int,
    candidate_local_probability: float,
    server_resident: Iterable[tuple],
    preference: Optional[Preference] = None,
) -> float:
    """Corollary 2: the approximate global bound ``P*_g-sky(s)``.

    ``server_resident`` iterates the quaternions currently known to the
    coordinator as ``(tuple, site, local_probability)`` triples.  Every
    resident tuple from a *different* site that dominates the candidate
    tightens the bound by its Observation-2 factor.  At most one
    dominator per foreign site may be applied — Lemma 1 has a single
    ``P_sky(s, D_x)`` term per site — so the tightest available
    dominator per site is used.
    """
    best_per_site: dict = {}
    for t, site, local_prob in server_resident:
        if site == candidate_site or t.key == candidate.key:
            continue
        if dominates(t, candidate, preference):
            factor = observation2_bound(local_prob, t.probability)
            prev = best_per_site.get(site)
            if prev is None or factor < prev:
                best_per_site[site] = factor
    bound = candidate_local_probability
    for factor in best_per_site.values():
        bound *= factor
    return bound

"""Core data model and centralized algorithms.

Everything in this package is independent of the distributed machinery:
the uncertain tuple model, dominance with preferences and subspaces,
possible-world semantics, the closed-form probability arithmetic of
Eqs. 3–12, conventional and probabilistic skyline algorithms, and the
cardinality/cost model of Eqs. 6–8.
"""

from .cardinality import (
    expected_feedback_tuples,
    expected_local_skyline_tuples,
    expected_skyline_cardinality,
    feedback_overhead_ratio,
)
from .dominance import Direction, Preference, dominates, dominates_values
from .possible_worlds import (
    conventional_skyline,
    enumerate_worlds,
    skyline_probabilities_exhaustive,
    skyline_probabilities_monte_carlo,
    world_probability,
)
from .prob_skyline import (
    ProbabilisticSkyline,
    SkylineMember,
    all_skyline_probabilities,
    prob_skyline_brute_force,
    prob_skyline_sfs,
)
from .probability import (
    combine_site_factors,
    corollary2_bound,
    feedback_pruning_bound,
    foreign_skyline_probability,
    global_skyline_probability,
    non_occurrence_product,
    observation2_bound,
    skyline_probability,
)
from .partition_index import PartitionIndex
from .skycube import ProbabilisticSkycube, compute_skycube, enumerate_subspaces
from .statistics import (
    ProbabilityProfile,
    dimension_correlations,
    dominance_profile,
    layer_of_qualified,
    probability_profile,
    skyline_layers,
)
from .skyline import block_nested_loop, divide_and_conquer, skyline, sort_filter_skyline
from .tuples import UncertainTuple, make_tuples, tuples_from_arrays, validate_database

__all__ = [
    "UncertainTuple",
    "make_tuples",
    "tuples_from_arrays",
    "validate_database",
    "Direction",
    "Preference",
    "dominates",
    "dominates_values",
    "world_probability",
    "enumerate_worlds",
    "conventional_skyline",
    "skyline_probabilities_exhaustive",
    "skyline_probabilities_monte_carlo",
    "non_occurrence_product",
    "skyline_probability",
    "foreign_skyline_probability",
    "global_skyline_probability",
    "combine_site_factors",
    "feedback_pruning_bound",
    "observation2_bound",
    "corollary2_bound",
    "skyline",
    "block_nested_loop",
    "sort_filter_skyline",
    "divide_and_conquer",
    "SkylineMember",
    "ProbabilisticSkyline",
    "PartitionIndex",
    "prob_skyline_brute_force",
    "prob_skyline_sfs",
    "all_skyline_probabilities",
    "expected_skyline_cardinality",
    "ProbabilisticSkycube",
    "compute_skycube",
    "enumerate_subspaces",
    "ProbabilityProfile",
    "probability_profile",
    "dimension_correlations",
    "skyline_layers",
    "layer_of_qualified",
    "dominance_profile",
    "expected_feedback_tuples",
    "expected_local_skyline_tuples",
    "feedback_overhead_ratio",
]

"""Skyline-cardinality estimation and the feedback cost model (Eqs. 6–8).

Section 4 of the paper sizes its feedback mechanism with the classic
estimate that a set of ``n`` tuples, independently and uniformly
distributed with no duplicate coordinates, has an expected skyline of
``ln^{d-1}(n) / (d-1)!`` points — and, because tuples here *occur*
only with their existential probability, takes the expectation over
the number ``n`` of tuples that truly show up:

    H(d, N) ≈ Σ_n  ln^{d-1}(n) / (d-1)!  ×  P(n)          (Eq. 6)

(The paper prints ``d!``; the harmonic-number derivation it cites
[22], [35] gives ``(d-1)!``, and we expose the factorial convention as
an argument so both can be reproduced.)

With uniform-[0,1] existential probabilities the count of appearing
tuples is Binomial(N, 1/2) to an excellent approximation, and the
summand varies slowly, so the expectation is evaluated exactly for
small N and over a ±8σ binomial window for large N.

On top of H the module provides the paper's two bandwidth estimates:

    N_back  = (m − 1) × H(d, N)                            (Eq. 7)
    N_local = (m − 1) × H(d, N / m)                        (Eq. 8)

whose comparison (``N_back > N_local`` for every m > 1) is the
argument for *selective* feedback — broadcasting every server-side
skyline tuple costs more than shipping all local skylines would, so
feedback must earn its bandwidth through pruning.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

__all__ = [
    "expected_skyline_cardinality",
    "uniform_presence_pmf_window",
    "expected_feedback_tuples",
    "expected_local_skyline_tuples",
    "feedback_overhead_ratio",
]


def _log_binom_pmf(n: int, size: int, p: float) -> float:
    """log of the Binomial(size, p) pmf at ``n`` via lgamma."""
    if n < 0 or n > size:
        return float("-inf")
    return (
        math.lgamma(size + 1)
        - math.lgamma(n + 1)
        - math.lgamma(size - n + 1)
        + n * math.log(p)
        + (size - n) * math.log1p(-p)
    )


def uniform_presence_pmf_window(
    cardinality: int, mean_presence: float = 0.5, sigmas: float = 8.0
) -> Tuple[int, List[float]]:
    """Binomial pmf over the plausible presence counts.

    Returns ``(start, probabilities)`` covering ``mean ± sigmas·σ``;
    the tail mass outside the window is below 1e-14 for ``sigmas=8``.
    Tuples with uniform-[0,1] existential probabilities appear
    independently with marginal probability ``mean_presence = 1/2``.
    """
    if cardinality <= 0:
        return 0, [1.0]
    mean = cardinality * mean_presence
    sd = math.sqrt(cardinality * mean_presence * (1.0 - mean_presence))
    lo = max(0, int(mean - sigmas * sd))
    hi = min(cardinality, int(mean + sigmas * sd) + 1)
    probs = [
        math.exp(_log_binom_pmf(n, cardinality, mean_presence)) for n in range(lo, hi + 1)
    ]
    return lo, probs


def expected_skyline_cardinality(
    dimensionality: int,
    cardinality: int,
    mean_presence: float = 0.5,
    factorial_of: Optional[int] = None,
) -> float:
    """Eq. 6: expected number of probabilistic-skyline tuples, H(d, N).

    Parameters
    ----------
    dimensionality:
        Number of attributes ``d`` (≥ 1).
    cardinality:
        Database size ``N``.
    mean_presence:
        Marginal probability that a tuple occurs (1/2 for uniform-[0,1]
        existential probabilities).
    factorial_of:
        Denominator convention: ``d - 1`` (default, the harmonic-number
        result) or ``d`` (the constant as literally printed in Eq. 6).
    """
    if dimensionality < 1:
        raise ValueError("dimensionality must be at least 1")
    if cardinality < 0:
        raise ValueError("cardinality must be non-negative")
    if cardinality == 0:
        return 0.0
    k = dimensionality - 1 if factorial_of is None else factorial_of
    denom = math.factorial(k)
    start, probs = uniform_presence_pmf_window(cardinality, mean_presence)
    total = 0.0
    for offset, p in enumerate(probs):
        n = start + offset
        if n <= 1:
            # ln(1) = 0 ⇒ a 0- or 1-tuple world has a skyline of ≤ 1 tuple.
            total += p * float(n)
            continue
        total += p * (math.log(n) ** (dimensionality - 1)) / denom
    return total


def expected_feedback_tuples(
    dimensionality: int, cardinality: int, sites: int, **kwargs: object
) -> float:
    """Eq. 7: N_back = (m − 1) × H(d, N)."""
    _check_sites(sites)
    return (sites - 1) * expected_skyline_cardinality(
        dimensionality, cardinality, **kwargs
    )


def expected_local_skyline_tuples(
    dimensionality: int, cardinality: int, sites: int, **kwargs: object
) -> float:
    """Eq. 8: N_local = (m − 1) × H(d, N / m).

    (The paper's own constant; the natural total over all sites would
    carry ``m`` rather than ``m − 1``, which only strengthens the
    inequality the comparison rests on.)
    """
    _check_sites(sites)
    return (sites - 1) * expected_skyline_cardinality(
        dimensionality, max(1, cardinality // sites), **kwargs
    )


def feedback_overhead_ratio(
    dimensionality: int, cardinality: int, sites: int, **kwargs: object
) -> float:
    """``N_back / N_local`` — how much costlier indiscriminate feedback is.

    Greater than 1 for every ``m > 1`` (H grows with N), quantifying
    §4's conclusion that feedback tuples must be chosen for pruning
    power rather than broadcast wholesale.
    """
    back = expected_feedback_tuples(dimensionality, cardinality, sites, **kwargs)
    local = expected_local_skyline_tuples(dimensionality, cardinality, sites, **kwargs)
    if local == 0.0:
        return float("inf")
    return back / local


def _check_sites(sites: int) -> None:
    if sites < 1:
        raise ValueError("the system needs at least one site")

"""Uncertain tuple model.

The paper's data model (Fig. 2) is a relation of ``N`` tuples, each
carrying ``d`` real-valued attributes and an *existential probability*
``0 < P(t) <= 1`` giving the chance the tuple truly occurs.  Tuples
select their existential state independently of one another, which is
what makes the closed form for skyline probabilities (Eq. 3) valid.

This module defines :class:`UncertainTuple`, the value type used by
every other layer of the library, together with helpers for building
collections of tuples from plain Python data or numpy arrays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, List, Sequence, Tuple

__all__ = [
    "UncertainTuple",
    "make_tuples",
    "tuples_from_arrays",
    "validate_database",
]


@dataclass(frozen=True)
class UncertainTuple:
    """A single uncertain record.

    Parameters
    ----------
    key:
        A globally unique identifier.  The paper assumes every tuple in
        the unified database ``D = D_1 ∪ … ∪ D_m`` is unique; we enforce
        that through this key rather than through value equality so
        that two hotels may share price and distance yet remain
        distinct records.
    values:
        The ``d`` attribute values.  Smaller is better on every
        dimension unless a :class:`~repro.core.dominance.Preference`
        says otherwise.
    probability:
        Existential probability ``P(t)`` with ``0 < P(t) <= 1``.
    """

    key: int
    values: Tuple[float, ...]
    probability: float

    def __post_init__(self) -> None:
        if not isinstance(self.values, tuple):
            # Accept any sequence at construction time but normalise to
            # a tuple so the dataclass stays hashable and immutable.
            object.__setattr__(self, "values", tuple(float(v) for v in self.values))
        else:
            object.__setattr__(self, "values", tuple(float(v) for v in self.values))
        if len(self.values) == 0:
            raise ValueError("an uncertain tuple needs at least one attribute")
        for v in self.values:
            if math.isnan(v):
                raise ValueError(f"tuple {self.key} has a NaN attribute value")
        p = float(self.probability)
        if not 0.0 < p <= 1.0:
            raise ValueError(
                f"existential probability must be in (0, 1], got {p!r} for tuple {self.key}"
            )
        object.__setattr__(self, "probability", p)

    @property
    def dimensionality(self) -> int:
        """Number of attributes ``d``."""
        return len(self.values)

    @property
    def non_occurrence(self) -> float:
        """``1 - P(t)``, the factor this tuple contributes to tuples it dominates."""
        return 1.0 - self.probability

    def value(self, dim: int) -> float:
        """Return the attribute value on dimension ``dim`` (0-based)."""
        return self.values[dim]

    def coordinate_sum(self) -> float:
        """Sum of attribute values; a monotone topological order for dominance.

        If ``t ≺ s`` then ``t.coordinate_sum() < s.coordinate_sum()``,
        which is what sort-first skyline algorithms rely on.
        """
        return float(sum(self.values))

    def __iter__(self) -> Iterator[float]:
        return iter(self.values)

    def __repr__(self) -> str:  # compact, example-friendly repr
        vals = ", ".join(f"{v:g}" for v in self.values)
        return f"UncertainTuple({self.key}: ({vals}), p={self.probability:g})"


def make_tuples(
    rows: Iterable[Sequence[float]],
    probabilities: Iterable[float],
    start_key: int = 0,
) -> List[UncertainTuple]:
    """Build a list of tuples from parallel iterables of rows and probabilities.

    Keys are assigned sequentially starting at ``start_key``.

    >>> make_tuples([(1, 2), (3, 4)], [0.5, 1.0])
    [UncertainTuple(0: (1, 2), p=0.5), UncertainTuple(1: (3, 4), p=1)]
    """
    out: List[UncertainTuple] = []
    key = start_key
    rows = list(rows)
    probs = list(probabilities)
    if len(rows) != len(probs):
        raise ValueError(
            f"got {len(rows)} rows but {len(probs)} probabilities; they must align"
        )
    for row, p in zip(rows, probs):
        out.append(UncertainTuple(key=key, values=tuple(row), probability=float(p)))
        key += 1
    return out


def tuples_from_arrays(
    values: Any, probabilities: Any, start_key: int = 0
) -> List[UncertainTuple]:
    """Build tuples from a ``(n, d)`` array of values and ``(n,)`` probabilities.

    Thin convenience wrapper around :func:`make_tuples` for numpy input;
    accepts anything with a ``tolist`` method or plain nested sequences.
    """
    if hasattr(values, "tolist"):
        values = values.tolist()
    if hasattr(probabilities, "tolist"):
        probabilities = probabilities.tolist()
    return make_tuples(values, probabilities, start_key=start_key)


def validate_database(tuples: Sequence[UncertainTuple]) -> int:
    """Check that ``tuples`` form a well-formed uncertain database.

    Verifies key uniqueness and a consistent dimensionality, returning
    the common dimensionality ``d``.  Raises :class:`ValueError` on any
    violation.  An empty database is allowed and reported as ``d = 0``.
    """
    if not tuples:
        return 0
    d = tuples[0].dimensionality
    seen = set()
    for t in tuples:
        if t.dimensionality != d:
            raise ValueError(
                f"tuple {t.key} has dimensionality {t.dimensionality}, expected {d}"
            )
        if t.key in seen:
            raise ValueError(f"duplicate tuple key {t.key}")
        seen.add(t.key)
    return d

"""The probabilistic skycube: threshold skylines of every subspace.

§4 of the paper notes the whole framework applies to "any prespecified
subset attributes of size k ≤ d" by checking dominance on those
dimensions only.  Analysts rarely know the one subspace they want, so
this module materialises the *skycube* — the answer for every non-empty
subspace at once (ref. [3] of the paper studies the certain-data
version).

Unlike the certain-data skycube, probabilistic answers enjoy **no
containment relation between parent and child subspaces** in either
direction: projecting away a dimension can create new dominators (a
tuple better only on the removed dimension stops mattering) *and*
destroy old ones, moving each tuple's probability both ways.  The
implementation therefore computes each subspace independently — with
the sort-and-floor pruning of :func:`prob_skyline_sfs` — and shares
only the projection bookkeeping.  A test demonstrates the
non-containment concretely.

For ``d`` attributes there are ``2^d − 1`` subspaces; construction is
guarded at 12 dimensions (4095 subspaces) as an honesty check rather
than a real limit.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .dominance import Preference
from .prob_skyline import ProbabilisticSkyline, prob_skyline_sfs
from .tuples import UncertainTuple

__all__ = ["ProbabilisticSkycube", "compute_skycube", "enumerate_subspaces"]

_MAX_CUBE_DIMENSIONALITY = 12


def enumerate_subspaces(
    dimensionality: int, max_size: Optional[int] = None
) -> Iterator[Tuple[int, ...]]:
    """Every non-empty dimension subset, smallest first, sorted indices."""
    if dimensionality < 1:
        raise ValueError("need at least one dimension")
    cap = dimensionality if max_size is None else min(max_size, dimensionality)
    for size in range(1, cap + 1):
        yield from itertools.combinations(range(dimensionality), size)


@dataclass
class ProbabilisticSkycube:
    """All subspace answers of one relation at one threshold."""

    threshold: float
    dimensionality: int
    answers: Dict[Tuple[int, ...], ProbabilisticSkyline] = field(default_factory=dict)

    def answer(self, dims: Sequence[int]) -> ProbabilisticSkyline:
        """The skyline of one subspace (any order of indices)."""
        key = tuple(sorted(dims))
        if key not in self.answers:
            raise KeyError(f"subspace {key} not materialised in this cube")
        return self.answers[key]

    def subspaces(self) -> List[Tuple[int, ...]]:
        return sorted(self.answers, key=lambda s: (len(s), s))

    def membership_counts(self) -> Dict[int, int]:
        """For each tuple key: in how many subspace skylines it appears.

        The natural "how robustly interesting is this tuple" score a
        skycube supports.
        """
        counts: Dict[int, int] = {}
        for answer in self.answers.values():
            for member in answer:
                counts[member.key] = counts.get(member.key, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self.answers)


def compute_skycube(
    database: Sequence[UncertainTuple],
    threshold: float,
    max_subspace_size: Optional[int] = None,
    base_preference: Optional[Preference] = None,
) -> ProbabilisticSkycube:
    """Materialise the probabilistic skycube of ``database``.

    Parameters
    ----------
    max_subspace_size:
        Only build subspaces with at most this many dimensions (the
        low-dimensional layers are the ones analysts browse).
    base_preference:
        Optional per-dimension directions applied inside every
        subspace (its own ``subspace`` field, if any, must be unset).
    """
    if base_preference is not None and base_preference.subspace is not None:
        raise ValueError(
            "base_preference must not fix a subspace; the cube enumerates them"
        )
    if not database:
        return ProbabilisticSkycube(threshold, 0)
    d = database[0].dimensionality
    if d > _MAX_CUBE_DIMENSIONALITY and max_subspace_size is None:
        raise ValueError(
            f"a full {d}-dimensional skycube has {2 ** d - 1} subspaces; "
            f"pass max_subspace_size to bound the enumeration"
        )
    directions = base_preference.directions if base_preference is not None else None
    cube = ProbabilisticSkycube(threshold=threshold, dimensionality=d)
    for dims in enumerate_subspaces(d, max_subspace_size):
        preference = Preference(directions=directions, subspace=dims)
        cube.answers[dims] = prob_skyline_sfs(database, threshold, preference)
    return cube

"""Columnar (numpy) kernels for dominance tests and skyline probabilities.

Every hot path of the reproduction — the Eq. 3 local skyline computed at
``prepare()`` time, the Eq. 9 probe factor, and the Local-Pruning
feedback scan — reduces to the same primitive: *which stored points
dominate a given point, and what is the product of their non-occurrence
probabilities?*  The scalar modules (:mod:`repro.core.dominance`,
:mod:`repro.core.probability`, :mod:`repro.core.prob_skyline`) answer it
one Python call per tuple; this module answers it one broadcasted numpy
comparison per *partition*.

:class:`ColumnStore` holds a partition column-wise — an ``(n, d)``
matrix of canonical min-space coordinates plus aligned probability and
``1 − P`` vectors — and exposes:

* :meth:`ColumnStore.dominators_mask` — the boolean dominator set of one
  point in a single broadcast (replaces ``n`` calls to
  ``dominates_values``).
* :meth:`ColumnStore.dominator_product` — Eq. 9 as a masked product.
* :meth:`ColumnStore.dominator_products` — the batched form: many probe
  points against the whole partition in one comparison.
* :func:`prob_skyline_sfs` — the sort-first local skyline evaluated
  against a prefix matrix block by block, preserving the scalar
  version's threshold early exit (factors are ≤ 1, so a partial product
  below the floor is already a verdict).

All kernels are exact re-expressions of the scalar arithmetic — the
same IEEE-754 multiplications in the same monotone setting — and the
property tests in ``tests/core/test_kernels.py`` pin agreement with the
scalar reference to 1e-9 across random preferences, duplicate
coordinates, and boundary probabilities.  Sites choose between the two
paths via ``SiteConfig.vectorized``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .dominance import Preference
from .prob_skyline import ProbabilisticSkyline, SkylineMember, _check_threshold
from .tuples import UncertainTuple

__all__ = ["ColumnStore", "prob_skyline_sfs"]

#: Initial rows per block in the cascaded scan of
#: :func:`prob_skyline_sfs`.  The first block alone disqualifies most
#: tuples (the smallest-sum rows dominate nearly everything), so it is
#: kept small; later blocks double up to :data:`_SFS_BLOCK_CAP` because
#: only a shrinking set of near-skyline candidates is still alive to
#: pay for them.
_SFS_BLOCK = 32

#: Largest block the cascade grows to.
_SFS_BLOCK_CAP = 4096


class ColumnStore:
    """A partition as columns: ``(n, d)`` values + probability vectors.

    Coordinates are stored in canonical min-space (the
    :class:`~repro.core.dominance.Preference` is applied once at
    construction), so every kernel is a plain ``<=`` / ``<`` broadcast
    regardless of directions or subspace — the same trick the PR-tree
    uses, lifted to columns.
    """

    __slots__ = ("values", "probabilities", "non_occurrence", "keys", "tuples")

    def __init__(
        self,
        values: np.ndarray,
        probabilities: np.ndarray,
        keys: np.ndarray,
        tuples: Optional[List[UncertainTuple]] = None,
    ) -> None:
        # float32 and float64 matrices pass through untouched — a
        # memory-mapped column file (repro.data.io.open_columns) must
        # not be copied into RAM just to enter the kernel layer; the
        # comparisons broadcast across dtypes exactly (every float32 is
        # representable in float64).  Anything else is coerced to a
        # contiguous float64 matrix as before.
        arr = np.asanyarray(values)
        if arr.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            arr = np.ascontiguousarray(arr, dtype=np.float64)
        self.values = arr
        self.probabilities = np.asarray(probabilities, dtype=np.float64)
        self.non_occurrence = 1.0 - self.probabilities
        self.keys = np.asarray(keys, dtype=np.int64)
        self.tuples = tuples

    @classmethod
    def from_arrays(
        cls,
        values: np.ndarray,
        probabilities: np.ndarray,
        keys: Optional[np.ndarray] = None,
        preference: Optional[Preference] = None,
    ) -> "ColumnStore":
        """Columnise pre-built arrays without a tuple detour.

        The chunked-construction path for large partitions: callers
        stream ``(n, d)`` values (float32 or float64, possibly
        memory-mapped — see :func:`repro.data.io.open_columns`) plus
        aligned probabilities straight into the kernel layer, never
        materialising ``n`` :class:`UncertainTuple` objects.  With
        ``preference=None`` the values are trusted to already be in
        canonical min-space and are not copied.
        """
        vals = np.asanyarray(values)
        if vals.ndim != 2:
            raise ValueError(f"values must be (n, d), got shape {vals.shape}")
        if preference is not None:
            vals = _project_matrix(np.asarray(vals, dtype=np.float64), preference)
        probs = np.asarray(probabilities, dtype=np.float64)
        if probs.shape != (vals.shape[0],):
            raise ValueError(
                f"{probs.shape[0] if probs.ndim else 'scalar'} probabilities "
                f"for {vals.shape[0]} rows"
            )
        if keys is None:
            key_arr = np.arange(vals.shape[0], dtype=np.int64)
        else:
            key_arr = np.asarray(keys, dtype=np.int64)
            if key_arr.shape != (vals.shape[0],):
                raise ValueError(f"{key_arr.shape[0]} keys for {vals.shape[0]} rows")
        return cls(vals, probs, key_arr, None)

    @classmethod
    def from_tuples(
        cls,
        tuples: Sequence[UncertainTuple],
        preference: Optional[Preference] = None,
    ) -> "ColumnStore":
        """Columnise ``tuples``, projecting into min-space once."""
        tuples = list(tuples)
        if not tuples:
            return cls(
                np.zeros((0, 0)), np.zeros(0), np.zeros(0, dtype=np.int64), []
            )
        raw = np.array([t.values for t in tuples], dtype=np.float64)
        values = _project_matrix(raw, preference)
        probs = np.array([t.probability for t in tuples], dtype=np.float64)
        keys = np.array([t.key for t in tuples], dtype=np.int64)
        return cls(values, probs, keys, tuples)

    def __len__(self) -> int:
        return self.values.shape[0]

    @property
    def dimensionality(self) -> int:
        return self.values.shape[1]

    def project_point(
        self, t: UncertainTuple, preference: Optional[Preference] = None
    ) -> np.ndarray:
        """One tuple's min-space coordinates, matching the stored columns."""
        return _project_matrix(
            np.asarray(t.values, dtype=np.float64).reshape(1, -1), preference
        )[0]

    # ------------------------------------------------------------------
    # primitives
    # ------------------------------------------------------------------

    def dominators_mask(
        self, point: np.ndarray, exclude_key: Optional[int] = None
    ) -> np.ndarray:
        """Boolean ``(n,)`` mask of stored rows dominating ``point``.

        One broadcasted comparison: a row dominates iff it is ``<=``
        everywhere and ``<`` somewhere (min-space).  ``exclude_key``
        removes the target's own row when it is stored here.
        """
        if len(self) == 0:
            return np.zeros(0, dtype=bool)
        le = self.values <= point
        mask = le.all(axis=1) & (self.values < point).any(axis=1)
        if exclude_key is not None:
            mask &= self.keys != exclude_key
        return mask

    def dominator_product(
        self,
        point: np.ndarray,
        exclude_key: Optional[int] = None,
        floor: float = 0.0,
    ) -> float:
        """Eq. 9: ``∏ (1 − P(t'))`` over rows dominating ``point``.

        Same contract as the scalar
        :func:`~repro.core.probability.non_occurrence_product`: exact
        whenever the result is ≥ ``floor``, otherwise merely guaranteed
        below it.  (The vectorized path computes the full product either
        way — the floor only matters to callers, not to the kernel.)
        """
        mask = self.dominators_mask(point, exclude_key=exclude_key)
        if not mask.any():
            return 1.0
        return float(np.prod(self.non_occurrence[mask]))

    def dominator_products(
        self,
        points: np.ndarray,
        exclude_keys: Optional[Sequence[Optional[int]]] = None,
        block: int = 256,
    ) -> np.ndarray:
        """Batched Eq. 9: one product per probe point, ``(k,)`` out.

        The broadcast allocates an ``(n, k)`` mask per block of probe
        points; ``block`` caps that footprint so a very fat batch never
        materialises gigabytes.
        """
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim == 1:
            pts = pts.reshape(1, -1)
        k = pts.shape[0]
        out = np.ones(k, dtype=np.float64)
        if len(self) == 0 or k == 0:
            return out
        excl = None
        if exclude_keys is not None:
            excl = np.array(
                [-1 if key is None else key for key in exclude_keys], dtype=np.int64
            )
        for start in range(0, k, block):
            stop = min(k, start + block)
            chunk = pts[start:stop]  # (b, d)
            le = self.values[:, None, :] <= chunk[None, :, :]
            lt = self.values[:, None, :] < chunk[None, :, :]
            mask = le.all(axis=2) & lt.any(axis=2)  # (n, b)
            if excl is not None:
                mask &= self.keys[:, None] != excl[None, start:stop]
            out[start:stop] = np.prod(
                np.where(mask, self.non_occurrence[:, None], 1.0), axis=0
            )
        return out


def prob_skyline_sfs(
    database: Sequence[UncertainTuple],
    threshold: float,
    preference: Optional[Preference] = None,
    block: int = _SFS_BLOCK,
) -> ProbabilisticSkyline:
    """Vectorized sort-first probabilistic skyline (Eq. 3 with early exit).

    Behaviourally identical to the scalar
    :func:`repro.core.prob_skyline.prob_skyline_sfs` — same membership,
    same probabilities, same factor order — but evaluated as a
    *candidate-filtered cascade* so the early exit vectorizes instead
    of fighting it:

    * Rows are sorted by min-space coordinate sum (ties kept stable).
      A row dominates a candidate iff it is ``<=`` on every kept
      dimension **and** its sum is strictly smaller — componentwise
      ``<=`` with equal sums forces equality — which both replaces the
      per-pair strictness test with one cheap 1-D comparison and makes
      the per-candidate prefix limit implicit (later rows can never
      have smaller sums).
    * The row matrix is scanned once in geometrically growing blocks
      (``block`` rows first, doubling to a cap).  Each block is tested
      against *every still-alive candidate* in a single broadcast, each
      alive candidate's running product absorbs its dominators in the
      block, and candidates whose product sinks below ``q / P(t)`` are
      retired — exactly the scalar early exit, amortised across the
      whole database.  The first block alone (the globally smallest
      rows, which dominate nearly everything) retires most of them.

    A candidate still alive after the last block has absorbed every one
    of its dominators in ascending-sum order, so its product — and its
    reported probability — is the scalar path's, multiplication for
    multiplication.
    """
    _check_threshold(threshold)
    tuples = list(database)
    if not tuples:
        return ProbabilisticSkyline(threshold, [])
    store = ColumnStore.from_tuples(tuples, preference)
    sums = store.values.sum(axis=1)
    order = np.argsort(sums, kind="stable")
    values = store.values[order]
    omp = store.non_occurrence[order]
    probs = store.probabilities[order]
    sums = sums[order]
    n = len(tuples)

    # Existential-probability skip (P_sky(t) ≤ P(t) < q) seeds the
    # alive set; floors are only meaningful where alive.
    alive = probs >= threshold
    floors = np.divide(
        threshold, probs, out=np.ones_like(probs), where=probs > 0.0
    )
    product = np.ones(n, dtype=np.float64)

    start = 0
    width = max(1, block)
    d = values.shape[1]
    while start < n:
        # A candidate before ``start`` has already seen every row with a
        # strictly smaller sum — its product is final, so only positions
        # ≥ start still participate.
        active = start + np.nonzero(alive[start:])[0]
        if active.size == 0:
            break
        stop = min(n, start + width)
        rows = values[start:stop]  # (b, d)
        cand = values[active]  # (k, d)
        # Sum test first (cheapest and most selective), then one (b, k)
        # comparison per dimension — never materialising a (b, k, d)
        # temporary.
        dominated = sums[start:stop, None] < sums[active][None, :]
        for dim in range(d):
            dominated &= rows[:, dim, None] <= cand[None, :, dim]
        product[active] *= np.prod(
            np.where(dominated, omp[start:stop, None], 1.0), axis=0
        )
        alive[active] = product[active] >= floors[active]
        start = stop
        width = min(width * 2, _SFS_BLOCK_CAP)

    members = [
        SkylineMember(tuples[order[i]], float(probs[i] * product[i]))
        for i in np.nonzero(alive)[0]
    ]
    return ProbabilisticSkyline(threshold, members)


def _project_matrix(
    raw: np.ndarray, preference: Optional[Preference]
) -> np.ndarray:
    """Apply a preference's signs and subspace to an ``(n, d)`` matrix.

    Column-wise equivalent of :meth:`Preference.project`: multiply each
    kept dimension by its direction sign — the same IEEE multiplication
    the scalar path performs, so projected coordinates are bit-identical
    across the two paths.
    """
    if preference is None:
        return raw
    d = raw.shape[1]
    dims = np.array(preference.effective_dims(d), dtype=np.intp)
    signs = np.asarray(preference.signs(d), dtype=np.float64)[dims]
    return raw[:, dims] * signs

"""Output-sensitive all-tuples skyline probabilities via space partitioning.

The flat kernels of :mod:`repro.core.kernels` answer *one* Eq.-9 probe
with one ``(n,)`` broadcast; filling the whole ``P_sky`` table that way
is ``n`` broadcasts — O(n²) comparisons, the wall our benchmarks hit at
n≈20k.  This module trades that for the space-partitioning scheme of
"Computing All Restricted Skyline Probabilities" (arXiv 2303.00259),
adapted to the uniform-grid machinery the repo already trusts in
:mod:`repro.index.grid`:

* Rows are binned into a uniform grid over canonical min-space (the
  binning is monotone, so ``r ≺ x ⟹ cell(r) ≤ cell(x)`` componentwise
  and the candidate-dominator cells of a target cell are exactly its
  lower staircase sub-grid).
* Every cell keeps its *actual* bounding box and the running
  ``∏(1 − P)`` aggregate of its members (in ascending row order).
* The table pass classifies whole cell pairs at once: a candidate cell
  whose upper corner falls strictly below the target cell's lower
  corner contributes its **aggregate** to every target member in one
  multiply; a cell that cannot reach the target's box is skipped
  outright; only the thin *boundary* staircase is refined point by
  point — and even there, rows that dominate every member are folded
  into a shared scalar before the dense mask is built.

Per-point work therefore tracks the dominance *boundary* instead of the
dominance *volume*: the dense refinement touches O(surface) rows where
the flat kernel touches all n.  The ``BENCH_kernels.json`` trajectory
(``python -m repro.bench.kernels --large``) prices the crossover — at
n=100k the table builds an order of magnitude faster than the flat
kernels can fill it, and n=10⁶ becomes feasible on one site.

Exactness contract: every product is a deterministic sequence of the
same IEEE-754 ``×(1 − P)`` multiplications the scalar reference
performs, but *associated differently* (cell aggregates are folded as
factors).  Products are therefore reproducible bit-for-bit run to run,
and agree with the scalar/vectorized kernels to the last few ulps —
the hypothesis suite in ``tests/core/test_partition_index.py`` pins
agreement at 1e-12 alongside exact membership agreement.

§5.4 maintenance is cell-granular: an insert/delete dirties only the
cells that can hold a dominated row (``cell.upper ≥ point``), and the
next table read recomputes just those cells against the refreshed
aggregates.  :meth:`PartitionIndex.to_payload` /
:meth:`PartitionIndex.from_payload` split the expensive product pass
from the cheap structural rebuild so a worker *process* can build the
table and ship only arrays back (see
:mod:`repro.distributed.workers`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .kernels import ColumnStore

__all__ = ["PartitionIndex"]

#: Target average rows per grid cell.  Larger cells amortise the
#: per-cell-pair classification; smaller cells shrink the boundary
#: refinement.  ~128 sits near the measured optimum for d=3..4 uniform
#: data once the staircase fast path is in play; callers tune it via
#: ``occupancy``.
DEFAULT_OCCUPANCY = 128

_EMPTY_LOWER = np.inf
_EMPTY_UPPER = -np.inf


class PartitionIndex:
    """Uniform-grid partition of a columnar store with the P_sky table.

    Construction is two-phase: :meth:`build` bins the rows and derives
    per-cell summaries (cheap, O(n log n)), then the first table read
    runs the cell-classified product pass (the expensive part, also
    triggered explicitly by :meth:`all_probabilities`).
    """

    def __init__(
        self,
        values: np.ndarray,
        probabilities: np.ndarray,
        keys: np.ndarray,
        cells_per_dim: int,
        lo: np.ndarray,
        width: np.ndarray,
    ) -> None:
        self.values = np.asarray(values, dtype=np.float64)
        self.probabilities = np.asarray(probabilities, dtype=np.float64)
        self.non_occurrence = 1.0 - self.probabilities
        self.keys = np.asarray(keys, dtype=np.int64)
        self.alive = np.ones(len(self.keys), dtype=bool)
        self.cells_per_dim = int(cells_per_dim)
        self._lo = np.asarray(lo, dtype=np.float64)
        self._width = np.asarray(width, dtype=np.float64)
        self._key_rows: Dict[int, int] = {
            int(k): i for i, k in enumerate(self.keys)
        }
        # Per-cell state, parallel arrays indexed by *cell position*.
        # ``_cell_ids`` keeps the raveled grid id so canonical
        # (ascending-id) processing order survives late cell creation.
        self._cell_ids = np.zeros(0, dtype=np.int64)
        self._cell_lower = np.zeros((0, self.dimensionality), dtype=np.float64)
        self._cell_upper = np.zeros((0, self.dimensionality), dtype=np.float64)
        self._cell_agg = np.zeros(0, dtype=np.float64)
        self._cell_rows: List[np.ndarray] = []
        self._cell_index: Dict[int, int] = {}
        #: Non-occurrence products, aligned with rows; garbage at dead rows.
        self.products = np.ones(len(self.keys), dtype=np.float64)
        self._dirty: Set[int] = set()
        #: True while cell *positions* already run in ascending raveled
        #: id (a fresh build; np.unique sorts).  Late cell creation may
        #: clear it, after which canonical ordering needs an argsort.
        self._ids_sorted = True
        self._bin_rows()
        # Everything is dirty until the first product pass.
        self._dirty.update(range(len(self._cell_rows)))

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        store: ColumnStore,
        occupancy: Optional[int] = None,
        cells_per_dim: Optional[int] = None,
    ) -> "PartitionIndex":
        """Bin ``store``'s rows; ``cells_per_dim=None`` auto-sizes.

        The auto rule targets ``occupancy`` rows per cell —
        ``(n / occupancy)^(1/d)`` bins per dimension — the same shape
        as :class:`~repro.index.grid.GridIndex`'s sizing but with a
        larger default occupancy, because the table pass pays per cell
        *pair* where the probe pays per cell.
        """
        values = np.asarray(store.values, dtype=np.float64)
        n = values.shape[0]
        d = values.shape[1] if values.ndim == 2 and values.shape[1] else 1
        if cells_per_dim is None:
            occ = DEFAULT_OCCUPANCY if occupancy is None else max(1, occupancy)
            cells_per_dim = max(1, round((max(n, 1) / occ) ** (1.0 / d))) if n else 1
        if n:
            lo = values.min(axis=0)
            hi = values.max(axis=0)
        else:
            lo = np.zeros(d)
            hi = np.zeros(d)
        width = (hi - lo) / cells_per_dim
        width[width <= 0.0] = 1.0
        return cls(
            values,
            np.asarray(store.probabilities, dtype=np.float64),
            store.keys,
            cells_per_dim,
            lo,
            width,
        )

    def _bin_of(self, points: np.ndarray) -> np.ndarray:
        """Grid coordinates of ``(k, d)`` points; monotone, edge-clamped."""
        idx = np.floor((points - self._lo) / self._width).astype(np.int64)
        return np.clip(idx, 0, self.cells_per_dim - 1)

    def _ravel(self, bins: np.ndarray) -> np.ndarray:
        """Raveled cell ids (C order) for ``(k, d)`` grid coordinates."""
        out = bins[:, 0].astype(np.int64)
        for j in range(1, bins.shape[1]):
            out = out * self.cells_per_dim + bins[:, j]
        return out

    def _canonical(self, positions: np.ndarray) -> np.ndarray:
        """Cell positions reordered to ascending raveled id (canonical)."""
        if self._ids_sorted:
            return positions
        return positions[np.argsort(self._cell_ids[positions], kind="stable")]

    def _bin_rows(self) -> None:
        n = len(self.keys)
        if n == 0:
            return
        ids = self._ravel(self._bin_of(self.values))
        order = np.argsort(ids, kind="stable")
        sorted_ids = ids[order]
        cell_ids, starts = np.unique(sorted_ids, return_index=True)
        bounds = np.append(starts, n)
        self._cell_ids = cell_ids
        self._cell_rows = [
            order[bounds[i] : bounds[i + 1]] for i in range(len(cell_ids))
        ]
        self._cell_index = {int(cid): i for i, cid in enumerate(cell_ids)}
        self._cell_lower = np.minimum.reduceat(self.values[order], starts, axis=0)
        self._cell_upper = np.maximum.reduceat(self.values[order], starts, axis=0)
        self._cell_agg = np.multiply.reduceat(self.non_occurrence[order], starts)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return int(self.alive.sum())

    @property
    def dimensionality(self) -> int:
        return self.values.shape[1] if self.values.ndim == 2 else 1

    @property
    def cell_count(self) -> int:
        return len(self._cell_rows)

    def stale_cells(self) -> int:
        """Cells awaiting recomputation (observability + tests)."""
        return len(self._dirty)

    # ------------------------------------------------------------------
    # the all-probabilities table
    # ------------------------------------------------------------------

    def all_probabilities(self) -> np.ndarray:
        """The full Eq.-9 table: ``∏_{t'≺t}(1 − P(t'))`` per stored row.

        Aligned with :attr:`keys`; entries at dead rows are garbage —
        mask with :attr:`alive`.  Dirty cells are recomputed first, so
        the returned view is always current.
        """
        self.refresh()
        return self.products

    def p_sky(self) -> np.ndarray:
        """Eq. 3 per stored row: ``P(t) × ∏_{t'≺t}(1 − P(t'))``."""
        return self.probabilities * self.all_probabilities()

    def refresh(self) -> int:
        """Recompute every dirty cell's products; returns cells redone."""
        if not self._dirty:
            return 0
        # Canonical order: ascending raveled cell id, matching a fresh
        # build, so recomputation is deterministic under any dirty-set
        # iteration order.
        dirty = sorted(self._dirty, key=lambda ci: int(self._cell_ids[ci]))
        for ci in dirty:
            self._recompute_cell(ci)
        self._dirty.clear()
        return len(dirty)

    def _recompute_cell(self, ci: int) -> None:
        members = self._cell_rows[ci]
        if members.size == 0:
            return
        mvals = self.values[members]
        c_lower = self._cell_lower[ci]
        c_upper = self._cell_upper[ci]
        # Candidate cells: grid coords ≤ target coords componentwise is
        # implied by the bbox tests below (binning is monotone), so the
        # classification runs on actual boxes directly — exact, and
        # immune to float rounding at bin edges.
        reach = ~np.any(self._cell_lower > c_upper[None, :], axis=1)
        reach[ci] = False
        full = (
            reach
            & np.all(self._cell_upper <= c_lower[None, :], axis=1)
            & np.any(self._cell_upper < c_lower[None, :], axis=1)
        )
        boundary = reach & ~full
        # Whole-cell contributions, folded in ascending cell-id order.
        common = 1.0
        full_pos = np.nonzero(full)[0]
        if full_pos.size:
            full_pos = self._canonical(full_pos)
            common = float(np.prod(self._cell_agg[full_pos]))
        # Staircase fast path: a boundary cell that overlaps the target
        # box on exactly ONE dimension `j` — and sits strictly below it
        # on some other dimension — resolves against every member with a
        # single 1-D test: its rows already satisfy ``≤`` on the resolved
        # dims (upper ≤ c_lower ≤ member) and ``<`` on the strict dim, so
        # r ≺ member  ⟺  r[j] ≤ member[j].  Per free dimension, all such
        # cells' rows collapse into one sort + cumprod + searchsorted:
        # O(B log B + m log B) where the dense mask pays O(B·m).
        stair_prod = np.ones(members.size, dtype=np.float64)
        free = self._cell_upper > c_lower[None, :]  # (ncells, d)
        strict_some = np.any(self._cell_upper < c_lower[None, :], axis=1)
        stair = boundary & (free.sum(axis=1) == 1) & strict_some
        if np.any(stair):
            boundary = boundary & ~stair
            for j in range(self.dimensionality):
                sj_pos = np.nonzero(stair & free[:, j])[0]
                if not sj_pos.size:
                    continue
                sj_pos = self._canonical(sj_pos)
                srows = np.concatenate([self._cell_rows[b] for b in sj_pos])
                vals_j = self.values[srows, j]
                order = np.argsort(vals_j, kind="stable")
                prefix = np.cumprod(self.non_occurrence[srows[order]])
                counts = np.searchsorted(vals_j[order], mvals[:, j], side="right")
                stair_prod *= np.where(
                    counts > 0, prefix[np.maximum(counts - 1, 0)], 1.0
                )
        # Remaining boundary rows, gathered in (cell id, row) order.
        bnd_pos = np.nonzero(boundary)[0]
        if bnd_pos.size:
            bnd_pos = self._canonical(bnd_pos)
            rows = np.concatenate([self._cell_rows[b] for b in bnd_pos])
            rvals = self.values[rows]
            # Rows beyond the target box dominate nobody here.
            keep = np.all(rvals <= c_upper[None, :], axis=1)
            rows = rows[keep]
            rvals = rvals[keep]
            # Rows at or below the box's lower corner (strict somewhere)
            # dominate *every* member: fold them into the shared scalar
            # instead of the dense mask.
            le_lower = rvals <= c_lower[None, :]
            dom_all = np.all(le_lower, axis=1) & np.any(
                rvals < c_lower[None, :], axis=1
            )
            if np.any(dom_all):
                common = common * float(np.prod(self.non_occurrence[rows[dom_all]]))
                rows = rows[~dom_all]
                rvals = rvals[~dom_all]
        else:
            rows = np.zeros(0, dtype=np.int64)
            rvals = np.zeros((0, self.dimensionality), dtype=np.float64)
        dense = self._dense_products(rvals, self.non_occurrence[rows], mvals, c_lower)
        own = self._own_cell_products(mvals, self.non_occurrence[members])
        self.products[members] = ((common * stair_prod) * dense) * own

    @staticmethod
    def _dense_products(
        rvals: np.ndarray,
        rfactors: np.ndarray,
        mvals: np.ndarray,
        c_lower: np.ndarray,
    ) -> np.ndarray:
        """Per-member ``∏(1−P)`` over the refined boundary rows.

        One (B, m) mask built dimension by dimension with contiguous
        ops — no fancy indexing, no (B, m, d) intermediate.  Rows
        strictly below the target box on some dimension skip the
        strictness pass entirely (they are strict against every member
        by that dimension alone).
        """
        m = mvals.shape[0]
        if rvals.shape[0] == 0:
            return np.ones(m, dtype=np.float64)
        d = rvals.shape[1]
        mask = np.less_equal(rvals[:, 0, None], mvals[None, :, 0])
        tmp = np.empty_like(mask)
        for j in range(1, d):
            np.less_equal(rvals[:, j, None], mvals[None, :, j], out=tmp)
            mask &= tmp
        # Strictness: a row below the box's lower corner on any dim is
        # strict against every member already; only when no row has that
        # slack does the explicit < pass run.
        if not bool(np.all(np.any(rvals < c_lower[None, :], axis=1))):
            lt = np.less(rvals[:, 0, None], mvals[None, :, 0])
            for j in range(1, d):
                np.less(rvals[:, j, None], mvals[None, :, j], out=tmp)
                lt |= tmp
            mask &= lt
        out: np.ndarray = np.multiply.reduce(
            np.broadcast_to(rfactors[:, None], mask.shape),
            axis=0,
            where=mask,
            initial=1.0,
        )
        return out

    @staticmethod
    def _own_cell_products(mvals: np.ndarray, mfactors: np.ndarray) -> np.ndarray:
        """Within-cell dominators: an (m, m) mask; ties/self never dominate."""
        m = mvals.shape[0]
        if m <= 1:
            return np.ones(m, dtype=np.float64)
        le = np.all(mvals[:, None, :] <= mvals[None, :, :], axis=2)
        lt = np.any(mvals[:, None, :] < mvals[None, :, :], axis=2)
        mask = le & lt
        return np.prod(np.where(mask, mfactors[:, None], 1.0), axis=0)

    # ------------------------------------------------------------------
    # output-sensitive probes (Eq. 9 for arbitrary points)
    # ------------------------------------------------------------------

    def dominator_product(
        self, point: np.ndarray, exclude_key: Optional[int] = None
    ) -> float:
        """Eq. 9 against the partition: aggregates for interior cells,
        per-row refinement only on the boundary staircase."""
        self.refresh()
        if not self._cell_rows:
            return 1.0
        p = np.asarray(point, dtype=np.float64)
        reach = ~np.any(self._cell_lower > p[None, :], axis=1)
        full = (
            reach
            & np.all(self._cell_upper <= p[None, :], axis=1)
            & np.any(self._cell_upper < p[None, :], axis=1)
        )
        exclude_row = -1
        if exclude_key is not None:
            exclude_row = self._key_rows.get(int(exclude_key), -1)
            if exclude_row >= 0 and self.alive[exclude_row]:
                # The excluded row's cell must be refined, not aggregated.
                home = self._cell_of_row(exclude_row)
                if home >= 0:
                    full[home] = False
            else:
                exclude_row = -1
        boundary = reach & ~full
        product = 1.0
        full_pos = np.nonzero(full)[0]
        if full_pos.size:
            full_pos = self._canonical(full_pos)
            product = float(np.prod(self._cell_agg[full_pos]))
        bnd_pos = np.nonzero(boundary)[0]
        if bnd_pos.size:
            bnd_pos = self._canonical(bnd_pos)
            rows = np.concatenate([self._cell_rows[b] for b in bnd_pos])
            if exclude_row >= 0:
                rows = rows[rows != exclude_row]
            rvals = self.values[rows]
            dom = np.all(rvals <= p[None, :], axis=1) & np.any(
                rvals < p[None, :], axis=1
            )
            if np.any(dom):
                product = product * float(np.prod(self.non_occurrence[rows[dom]]))
        return product

    def dominator_products(
        self,
        points: np.ndarray,
        exclude_keys: Optional[Sequence[Optional[int]]] = None,
    ) -> np.ndarray:
        """Batched :meth:`dominator_product`, one probe point per row."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim == 1:
            pts = pts.reshape(1, -1)
        out = np.ones(pts.shape[0], dtype=np.float64)
        for i in range(pts.shape[0]):
            key = exclude_keys[i] if exclude_keys is not None else None
            out[i] = self.dominator_product(pts[i], exclude_key=key)
        return out

    def _cell_of_row(self, row: int) -> int:
        cid = int(self._ravel(self._bin_of(self.values[row].reshape(1, -1)))[0])
        return self._cell_index.get(cid, -1)

    # ------------------------------------------------------------------
    # §5.4 maintenance: cell-granular invalidation
    # ------------------------------------------------------------------

    def apply_insert(self, point: np.ndarray, probability: float, key: int) -> None:
        """Add one row (min-space coordinates) and dirty the touched cells.

        Only cells that can hold a row dominated by ``point`` —
        ``cell.upper ≥ point`` componentwise — need their products
        redone; everything else keeps its table entries.
        """
        if int(key) in self._key_rows:
            raise ValueError(f"key {key} already indexed")
        p = np.asarray(point, dtype=np.float64).reshape(1, -1)
        row = len(self.keys)
        self.values = np.concatenate([self.values, p]) if row else p.copy()
        self.probabilities = np.append(self.probabilities, float(probability))
        self.non_occurrence = np.append(self.non_occurrence, 1.0 - float(probability))
        self.keys = np.append(self.keys, np.int64(key))
        self.alive = np.append(self.alive, True)
        self.products = np.append(self.products, 1.0)
        self._key_rows[int(key)] = row
        cid = int(self._ravel(self._bin_of(p))[0])
        ci = self._cell_index.get(cid)
        if ci is None:
            ci = len(self._cell_rows)
            self._cell_index[cid] = ci
            if self._cell_ids.size and cid <= int(self._cell_ids[-1]):
                self._ids_sorted = False
            self._cell_ids = np.append(self._cell_ids, np.int64(cid))
            self._cell_rows.append(np.array([row], dtype=np.int64))
            self._cell_lower = np.concatenate([self._cell_lower, p])
            self._cell_upper = np.concatenate([self._cell_upper, p])
            self._cell_agg = np.append(self._cell_agg, 1.0)
        else:
            self._cell_rows[ci] = np.append(self._cell_rows[ci], np.int64(row))
        self._refresh_cell_summary(ci)
        self._dirty_dominated_by(p[0])

    def apply_delete(self, key: int) -> bool:
        """Drop one row by key; returns False when the key is unknown."""
        row = self._key_rows.pop(int(key), None)
        if row is None:
            return False
        self.alive[row] = False
        point = self.values[row]
        ci = self._cell_of_row(row)
        if ci >= 0:
            kept = self._cell_rows[ci]
            self._cell_rows[ci] = kept[kept != row]
            self._refresh_cell_summary(ci)
        self._dirty_dominated_by(point)
        return True

    def _refresh_cell_summary(self, ci: int) -> None:
        rows = self._cell_rows[ci]
        if rows.size == 0:
            self._cell_lower[ci] = _EMPTY_LOWER
            self._cell_upper[ci] = _EMPTY_UPPER
            self._cell_agg[ci] = 1.0
            return
        vals = self.values[rows]
        self._cell_lower[ci] = vals.min(axis=0)
        self._cell_upper[ci] = vals.max(axis=0)
        self._cell_agg[ci] = float(np.prod(self.non_occurrence[rows]))

    def _dirty_dominated_by(self, point: np.ndarray) -> None:
        """Dirty every cell that can hold a row dominated by ``point``.

        A dominated row ``r`` satisfies ``r ≥ point`` componentwise, so
        its cell's upper corner does too; cells failing that test keep
        products that are provably unaffected.
        """
        if not self._cell_rows:
            return
        hit = np.all(self._cell_upper >= point[None, :], axis=1)
        self._dirty.update(int(i) for i in np.nonzero(hit)[0])

    # ------------------------------------------------------------------
    # worker-process transfer
    # ------------------------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """The expensive state as plain arrays (process-safe pickle).

        Ships only what the structural rebuild cannot cheaply re-derive:
        the product table plus the grid parameters that make the rebuild
        land on identical cells.
        """
        self.refresh()
        return {
            "products": np.array(self.products),
            "cells_per_dim": self.cells_per_dim,
            "lo": np.array(self._lo),
            "width": np.array(self._width),
        }

    @classmethod
    def from_payload(cls, store: ColumnStore, payload: Dict[str, object]) -> "PartitionIndex":
        """Rebuild the index around a worker-computed product table.

        The structural pass (binning, boxes, aggregates) re-runs locally
        in O(n log n); the O(n^{2−1/d}) product pass is taken from the
        payload verbatim.
        """
        cells = int(payload["cells_per_dim"])  # type: ignore[arg-type]
        index = cls.build(store, cells_per_dim=cells)
        lo = np.asarray(payload["lo"], dtype=np.float64)
        width = np.asarray(payload["width"], dtype=np.float64)
        if not (np.array_equal(lo, index._lo) and np.array_equal(width, index._width)):
            raise ValueError("payload grid does not match the store")
        products = np.asarray(payload["products"], dtype=np.float64)
        if products.shape != index.products.shape:
            raise ValueError("payload product table does not match the store")
        index.products = products.copy()
        index._dirty.clear()
        return index

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Re-derive every cell summary; raise AssertionError on drift."""
        seen = 0
        for ci, rows in enumerate(self._cell_rows):
            assert len(set(rows.tolist())) == rows.size, f"duplicate rows in cell {ci}"
            seen += rows.size
            if rows.size == 0:
                assert self._cell_agg[ci] == 1.0
                continue
            vals = self.values[rows]
            assert np.array_equal(self._cell_lower[ci], vals.min(axis=0)), (
                f"stale lower bound in cell {ci}"
            )
            assert np.array_equal(self._cell_upper[ci], vals.max(axis=0)), (
                f"stale upper bound in cell {ci}"
            )
            assert abs(
                self._cell_agg[ci] - float(np.prod(self.non_occurrence[rows]))
            ) < 1e-12, f"stale aggregate in cell {ci}"
            assert bool(np.all(self.alive[rows])), f"dead row indexed in cell {ci}"
        assert seen == len(self), "cell membership does not cover the live rows"

"""Per-candidate coverage: who contributed Eq.-9 factors, who didn't.

The correctness anchor for degraded mode is Observation 1 / Eq. 9:
every foreign factor satisfies ``P_sky(t, D_x) ≤ 1``, so by Lemma 1 /
Corollary 1 the product over any *subset* of sites

    P_sky(t, D_i) × ∏_{x ∈ reachable} P_sky(t, D_x)  ≥  P_g-sky(t)

is a sound **upper bound** on the exact global skyline probability.  A
query that lost sites therefore still terminates with a *superset* of
the true answer, each tuple annotated with its bound and the sites
that contributed — and the bound tightens monotonically as recovered
sites are re-probed.

:class:`CoverageTracker` keeps those books per broadcast candidate;
:class:`CoverageReport` is the read-only summary surfaced on
:class:`~repro.distributed.runner.RunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set, Tuple

if TYPE_CHECKING:  # typing only — fault must not import core at runtime
    from ..core.tuples import UncertainTuple

__all__ = ["TupleCoverage", "CoverageReport", "CoverageTracker"]


@dataclass
class TupleCoverage:
    """Coverage state for one broadcast candidate."""

    key: int
    origin: int
    tuple: "UncertainTuple"       # kept for re-probing
    upper_bound: float            # local probability × received exact factors
    contributing: Set[int] = field(default_factory=set)  # sites folded in (origin included)
    missing: Set[int] = field(default_factory=set)       # sites that owe a factor

    @property
    def exact(self) -> bool:
        """True when every site's factor is in the bound (Lemma 1)."""
        return not self.missing


@dataclass(frozen=True)
class CoverageReport:
    """The query-level coverage summary on a :class:`RunResult`.

    ``complete`` means the answer is exact — every reported probability
    is the Lemma-1 product over *all* sites.  Otherwise ``degraded``
    maps each affected tuple key to its ``(upper_bound,
    contributing_sites)`` annotation and ``down_sites`` lists the
    unreachable participants at termination.
    """

    complete: bool
    down_sites: Tuple[int, ...]
    candidates: int
    degraded: Dict[int, Tuple[float, Tuple[int, ...]]]
    transitions: Tuple[str, ...] = ()

    def describe(self) -> str:
        if self.complete:
            return "coverage: complete (exact answer)"
        return (
            f"coverage: DEGRADED — sites down {list(self.down_sites)}, "
            f"{len(self.degraded)} tuple(s) reported as Corollary-1 upper bounds"
        )


class CoverageTracker:
    """Tracks, per broadcast candidate, which sites' factors arrived."""

    def __init__(self, site_ids: Iterable[int]) -> None:
        self.site_ids = frozenset(site_ids)
        self._entries: Dict[int, TupleCoverage] = {}

    # ------------------------------------------------------------------
    # writes, driven by the coordinator's broadcast path
    # ------------------------------------------------------------------

    def open(
        self, key: int, origin: int, t: "UncertainTuple", local_probability: float
    ) -> TupleCoverage:
        """Register a candidate at broadcast time.

        The origin site's own contribution *is* the local probability,
        so it starts in ``contributing``; every other site starts in
        ``missing`` and moves over as its reply arrives.
        """
        cov = TupleCoverage(
            key=key,
            origin=origin,
            tuple=t,
            upper_bound=local_probability,
            contributing={origin},
            missing=set(self.site_ids - {origin}),
        )
        self._entries[key] = cov
        return cov

    def contribute(self, key: int, site_id: int, factor: float) -> float:
        """Fold one site's exact factor into the bound; returns the new bound."""
        cov = self._entries[key]
        if site_id in cov.missing:
            cov.missing.discard(site_id)
            cov.contributing.add(site_id)
            cov.upper_bound *= factor
        return cov.upper_bound

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def get(self, key: int) -> Optional[TupleCoverage]:
        return self._entries.get(key)

    def entries(self) -> List[TupleCoverage]:
        return list(self._entries.values())

    def missing_from(self, site_id: int) -> List[TupleCoverage]:
        """Candidates still owed a factor by ``site_id`` (the re-probe list)."""
        return [cov for cov in self._entries.values() if site_id in cov.missing]

    def degraded_keys(self) -> List[int]:
        return sorted(k for k, cov in self._entries.items() if not cov.exact)

    def report(
        self,
        down_sites: Iterable[int],
        result_keys: Optional[Iterable[int]] = None,
        transitions: Iterable[str] = (),
    ) -> CoverageReport:
        """Build the query-level summary.

        With ``result_keys`` the per-tuple annotations are restricted
        to tuples actually in the answer (dropped candidates keep no
        obligation: their bound already proved them unqualified).
        """
        keys = None if result_keys is None else set(result_keys)
        degraded = {
            key: (cov.upper_bound, tuple(sorted(cov.contributing)))
            for key, cov in self._entries.items()
            if not cov.exact and (keys is None or key in keys)
        }
        down = tuple(sorted(set(down_sites)))
        return CoverageReport(
            complete=not degraded and not down,
            down_sites=down,
            candidates=len(self._entries),
            degraded=degraded,
            transitions=tuple(transitions),
        )

"""Per-candidate coverage: who contributed Eq.-9 factors, who didn't.

The correctness anchor for degraded mode is Observation 1 / Eq. 9:
every foreign factor satisfies ``P_sky(t, D_x) ≤ 1``, so by Lemma 1 /
Corollary 1 the product over any *subset* of sites

    P_sky(t, D_i) × ∏_{x ∈ reachable} P_sky(t, D_x)  ≥  P_g-sky(t)

is a sound **upper bound** on the exact global skyline probability.  A
query that lost sites therefore still terminates with a *superset* of
the true answer, each tuple annotated with its bound and the sites
that contributed — and the bound tightens monotonically as recovered
sites are re-probed.

:class:`CoverageTracker` keeps those books per broadcast candidate;
:class:`CoverageReport` is the read-only summary surfaced on
:class:`~repro.distributed.runner.RunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Set, Tuple

if TYPE_CHECKING:  # typing only — fault must not import core at runtime
    from ..core.tuples import UncertainTuple

__all__ = ["TupleCoverage", "CoverageReport", "CoverageTracker", "TightenHook"]

#: Callback fired when a re-probe tightens a *watched* candidate's
#: bound: ``hook(key, new_upper_bound)``.  The coordinator uses it to
#: re-score already-reported results and buffered top-k entries.
TightenHook = Callable[[int, float], None]


@dataclass
class TupleCoverage:
    """Coverage state for one broadcast candidate."""

    key: int
    origin: int
    tuple: "UncertainTuple"       # kept for re-probing
    upper_bound: float            # local probability × received exact factors
    contributing: Set[int] = field(default_factory=set)  # sites folded in (origin included)
    missing: Set[int] = field(default_factory=set)       # sites that owe a factor

    @property
    def exact(self) -> bool:
        """True when every site's factor is in the bound (Lemma 1)."""
        return not self.missing


@dataclass(frozen=True)
class CoverageReport:
    """The query-level coverage summary on a :class:`RunResult`.

    ``complete`` means the answer is exact — every reported probability
    is the Lemma-1 product over *all* sites.  Otherwise ``degraded``
    maps each affected tuple key to its ``(upper_bound,
    contributing_sites)`` annotation and ``down_sites`` lists the
    unreachable participants at termination.

    ``buffered`` lists the keys of top-k entries that were still held
    *inexact* in a :class:`~repro.distributed.coordinator.TopKBuffer`
    when the query ended: qualified under their Corollary-1 bound but
    never provably orderable, so never emitted.  Each such key also
    appears in ``degraded`` with its ``(upper_bound,
    contributing_sites)`` annotation.
    """

    complete: bool
    down_sites: Tuple[int, ...]
    candidates: int
    degraded: Dict[int, Tuple[float, Tuple[int, ...]]]
    transitions: Tuple[str, ...] = ()
    buffered: Tuple[int, ...] = ()

    def describe(self) -> str:
        if self.complete:
            return "coverage: complete (exact answer)"
        line = (
            f"coverage: DEGRADED — sites down {list(self.down_sites)}, "
            f"{len(self.degraded)} tuple(s) reported as Corollary-1 upper bounds"
        )
        if self.buffered:
            line += (
                f"; {len(self.buffered)} top-k candidate(s) held back "
                "unemitted (order unprovable without the down sites)"
            )
        return line


class CoverageTracker:
    """Tracks, per broadcast candidate, which sites' factors arrived."""

    def __init__(self, site_ids: Iterable[int]) -> None:
        self.site_ids = frozenset(site_ids)
        self._entries: Dict[int, TupleCoverage] = {}
        #: Keys whose bound is *live* downstream (reported results and
        #: buffered top-k entries): a re-probe that tightens one of
        #: these must notify the hooks so the owner can re-score or
        #: retract.  Unwatched candidates tighten silently — their
        #: bound has no consumer yet.
        self._watched: Set[int] = set()
        self._tighten_hooks: List[TightenHook] = []

    # ------------------------------------------------------------------
    # writes, driven by the coordinator's broadcast path
    # ------------------------------------------------------------------

    def open(
        self, key: int, origin: int, t: "UncertainTuple", local_probability: float
    ) -> TupleCoverage:
        """Register a candidate at broadcast time.

        The origin site's own contribution *is* the local probability,
        so it starts in ``contributing``; every other site starts in
        ``missing`` and moves over as its reply arrives.
        """
        cov = TupleCoverage(
            key=key,
            origin=origin,
            tuple=t,
            upper_bound=local_probability,
            contributing={origin},
            missing=set(self.site_ids - {origin}),
        )
        self._entries[key] = cov
        return cov

    def contribute(self, key: int, site_id: int, factor: float) -> float:
        """Fold one site's exact factor into the bound; returns the new bound.

        When the key is watched (see :meth:`watch`) every registered
        tighten hook is invoked with the new bound — this is the
        per-candidate re-probe path reintegration rides to re-score
        reported results and buffered top-k entries.
        """
        cov = self._entries[key]
        if site_id in cov.missing:
            cov.missing.discard(site_id)
            cov.contributing.add(site_id)
            cov.upper_bound *= factor
            if key in self._watched:
                for hook in self._tighten_hooks:
                    hook(key, cov.upper_bound)
        return cov.upper_bound

    def watch(self, key: int) -> None:
        """Mark a candidate as consumed downstream (reported/buffered).

        From now on a factor that arrives for ``key`` — in practice
        only via a recovered site's re-probe, since every reachable
        site already answered before the candidate was consumed —
        triggers the tighten hooks.
        """
        self._watched.add(key)

    def add_tighten_hook(self, hook: TightenHook) -> None:
        """Register a callback for re-probed bounds of watched keys."""
        self._tighten_hooks.append(hook)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def get(self, key: int) -> Optional[TupleCoverage]:
        return self._entries.get(key)

    def entries(self) -> List[TupleCoverage]:
        return list(self._entries.values())

    def missing_from(self, site_id: int) -> List[TupleCoverage]:
        """Candidates still owed a factor by ``site_id`` (the re-probe list)."""
        return [cov for cov in self._entries.values() if site_id in cov.missing]

    def degraded_keys(self) -> List[int]:
        return sorted(k for k, cov in self._entries.items() if not cov.exact)

    def report(
        self,
        down_sites: Iterable[int],
        result_keys: Optional[Iterable[int]] = None,
        transitions: Iterable[str] = (),
        buffered_keys: Iterable[int] = (),
    ) -> CoverageReport:
        """Build the query-level summary.

        With ``result_keys`` the per-tuple annotations are restricted
        to tuples actually in the answer (dropped candidates keep no
        obligation: their bound already proved them unqualified) plus
        ``buffered_keys`` — top-k entries the coordinator held back
        unemitted at termination, which must still be disclosed with
        their Corollary-1 bounds.
        """
        buffered = set(buffered_keys)
        keys = None if result_keys is None else set(result_keys) | buffered
        degraded = {
            key: (cov.upper_bound, tuple(sorted(cov.contributing)))
            for key, cov in self._entries.items()
            if not cov.exact and (keys is None or key in keys)
        }
        down = tuple(sorted(set(down_sites)))
        return CoverageReport(
            complete=not degraded and not down,
            down_sites=down,
            candidates=len(self._entries),
            degraded=degraded,
            transitions=tuple(transitions),
            buffered=tuple(sorted(buffered)),
        )

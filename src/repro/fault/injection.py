"""The fault-injecting endpoint decorator.

:class:`FaultyEndpoint` wraps any :class:`~repro.net.transport.SiteEndpoint`
in the style of :class:`~repro.net.transport.RecordingEndpoint` and
consults a :class:`~repro.fault.schedule.FaultSchedule` before every
protocol call.  Injected crashes and timeouts raise *before* the inner
call runs, so a retried RPC is always safe — the site never saw the
failed attempt, exactly like a packet lost on the wire.

Injected faults are journalled in :attr:`FaultyEndpoint.injected` so a
chaos test can assert the schedule actually fired.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Sequence

from .errors import SiteCrashed, SiteTimeout
from .schedule import FaultAction, FaultKind, FaultSchedule

if TYPE_CHECKING:  # typing only — fault must not import distributed at runtime
    from ..core.tuples import UncertainTuple
    from ..distributed.site import BatchProbeReply, ProbeReply
    from ..net.message import Quaternion
    from ..net.transport import SiteEndpoint

__all__ = ["InjectedFault", "FaultyEndpoint"]


@dataclass(frozen=True)
class InjectedFault:
    """One fault the decorator actually injected."""

    site_id: int
    method: str
    call_index: int
    action: FaultAction


class FaultyEndpoint:
    """Transparent endpoint decorator that replays a fault schedule."""

    def __init__(
        self,
        inner: "SiteEndpoint",
        schedule: FaultSchedule,
        sleep: Optional[Callable[[float], None]] = time.sleep,
    ) -> None:
        self.inner = inner
        self.site_id = inner.site_id
        self.schedule = schedule
        self.calls = 0
        self.injected: List[InjectedFault] = []
        self._sleep = sleep

    def _gate(self, method: str) -> None:
        """Count the call and apply the scheduled fault, if any."""
        self.calls += 1
        action = self.schedule.decide(self.site_id, method, self.calls)
        if action is None:
            return
        self.injected.append(InjectedFault(self.site_id, method, self.calls, action))
        if action.kind is FaultKind.CRASH:
            raise SiteCrashed(
                self.site_id, f"injected crash on {method} (call {self.calls})"
            )
        if action.kind is FaultKind.TIMEOUT:
            raise SiteTimeout(
                self.site_id, f"injected timeout on {method} (call {self.calls})"
            )
        if action.kind is FaultKind.DELAY and self._sleep is not None:
            self._sleep(action.delay)

    # ------------------------------------------------------------------
    # the SiteEndpoint surface
    # ------------------------------------------------------------------

    def prepare(self, threshold: float) -> int:
        self._gate("prepare")
        return self.inner.prepare(threshold)

    def pop_representative(self) -> "Optional[Quaternion]":
        self._gate("pop_representative")
        return self.inner.pop_representative()

    def probe_and_prune(self, t: "UncertainTuple") -> "ProbeReply":
        self._gate("probe_and_prune")
        return self.inner.probe_and_prune(t)

    def probe_and_prune_batch(self, ts: "Sequence[UncertainTuple]") -> "BatchProbeReply":
        # One gate per batch RPC (it is one message on the wire).  Must
        # be explicit: the __getattr__ passthrough below would silently
        # hand back the inner method *without* fault injection.
        self._gate("probe_and_prune_batch")
        return self.inner.probe_and_prune_batch(ts)

    def queue_size(self) -> int:
        self._gate("queue_size")
        return self.inner.queue_size()

    def __getattr__(self, name: str) -> Any:
        # Everything outside the faulted protocol surface (ship_all,
        # update hooks, pruned_total, …) passes through untouched.
        return getattr(self.inner, name)

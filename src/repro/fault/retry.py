"""Capped exponential backoff with deterministic jitter.

The coordinator wraps every site RPC in :func:`call_with_retry` under a
:class:`RetryPolicy`.  Two properties matter more than sophistication:

* **Determinism** — the jitter is a pure function of ``(seed, site_id,
  attempt)``, so a chaos run's timing decisions replay exactly.
* **Non-raising** — exhausted retries are returned, not thrown; the
  coordinator escalates them to the site FSM instead of unwinding the
  query, which is the whole point of degraded mode.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Optional, Tuple

from .errors import RETRYABLE_FAULTS
from .schedule import _deterministic_unit

__all__ = ["RetryPolicy", "call_with_retry", "acall_with_retry"]


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before declaring a site DOWN.

    ``max_attempts``  — total attempts per RPC (1 = no retry).
    ``base_backoff``  — sleep before the first retry, in seconds.
    ``multiplier``    — exponential growth factor per retry.
    ``max_backoff``   — backoff cap.
    ``deadline``      — total backoff budget per RPC; when the next
                        sleep would exceed it, give up early.
    ``jitter``        — fraction of the backoff added as deterministic
                        jitter (0 disables it).
    ``seed``          — jitter seed; same seed, same delays.
    """

    max_attempts: int = 3
    base_backoff: float = 0.05
    multiplier: float = 2.0
    max_backoff: float = 2.0
    deadline: Optional[float] = None
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts!r}")
        if self.base_backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff times must be non-negative")

    def backoff(self, attempt: int, site_id: int = 0) -> float:
        """Sleep before retry number ``attempt`` (0-based), jitter included."""
        base = min(self.max_backoff, self.base_backoff * self.multiplier**attempt)
        if self.jitter <= 0.0:
            return base
        fraction = _deterministic_unit(self.seed, site_id, attempt + 1)
        return base * (1.0 + self.jitter * fraction)


def call_with_retry(
    fn: Callable[[], Any],
    policy: RetryPolicy,
    site_id: int = 0,
    sleep: Optional[Callable[[float], None]] = time.sleep,
    on_retry: Optional[Callable[[int, float, Exception], None]] = None,
) -> Tuple[Any, Optional[Exception]]:
    """Run ``fn`` under ``policy``; returns ``(value, None)`` or ``(None, err)``.

    Only transport faults (:data:`RETRYABLE_FAULTS`) are retried;
    anything else propagates — an application error is authoritative.
    ``on_retry(attempt, delay, exc)`` fires before each backoff sleep.
    """
    budget = policy.deadline
    spent = 0.0
    last: Optional[Exception] = None
    for attempt in range(policy.max_attempts):
        try:
            return fn(), None
        except RETRYABLE_FAULTS as exc:
            last = exc
            if attempt + 1 >= policy.max_attempts:
                break
            delay = policy.backoff(attempt, site_id)
            if budget is not None and spent + delay > budget:
                break
            spent += delay
            if on_retry is not None:
                on_retry(attempt, delay, exc)
            if sleep is not None:
                sleep(delay)
    return None, last


async def acall_with_retry(
    fn: Callable[[], Awaitable[Any]],
    policy: RetryPolicy,
    site_id: int = 0,
    on_retry: Optional[Callable[[int, float, Exception], None]] = None,
) -> Tuple[Any, Optional[Exception]]:
    """Awaitable twin of :func:`call_with_retry`.

    Same attempt loop, same deterministic :meth:`RetryPolicy.backoff`
    delays, same non-raising contract — the only difference is that the
    call is awaited and the backoff is an ``asyncio.sleep`` instead of a
    blocking one, so retries of one site's RPC overlap other sessions'
    work on the event loop.
    """
    budget = policy.deadline
    spent = 0.0
    last: Optional[Exception] = None
    for attempt in range(policy.max_attempts):
        try:
            return await fn(), None
        except RETRYABLE_FAULTS as exc:
            last = exc
            if attempt + 1 >= policy.max_attempts:
                break
            delay = policy.backoff(attempt, site_id)
            if budget is not None and spent + delay > budget:
                break
            spent += delay
            if on_retry is not None:
                on_retry(attempt, delay, exc)
            await asyncio.sleep(delay)
    return None, last

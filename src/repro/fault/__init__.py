"""Fault tolerance for the distributed protocol.

The paper's §4 framework assumes every site answers every round; this
package removes that assumption without touching the algorithms'
correctness argument:

* :mod:`~repro.fault.errors` — the transport-fault exception family
  every layer (sockets, injection, coordinator) speaks.
* :mod:`~repro.fault.fsm` — the per-site lifecycle state machine
  (``UP → SUSPECT → DOWN → RECOVERING → UP``) the coordinator tracks.
* :mod:`~repro.fault.schedule` / :mod:`~repro.fault.injection` — a
  deterministic, seedable fault plan and the :class:`FaultyEndpoint`
  decorator that replays it, so chaos runs are reproducible.
* :mod:`~repro.fault.retry` — deadline-capped exponential backoff with
  deterministic jitter for every coordinator→site RPC.
* :mod:`~repro.fault.coverage` — which sites contributed Eq.-9 factors
  to each candidate; the bookkeeping behind degraded-mode answers
  (Corollary-1 upper bounds) and re-probe-on-recovery.
* :mod:`~repro.fault.liveness` — an epoch-scoped snapshot of liveness
  verdicts so concurrent queries sharing sites (the serving layer)
  collapse their per-iteration pings into one probe per epoch.
"""

from .coverage import CoverageReport, CoverageTracker, TupleCoverage
from .errors import RETRYABLE_FAULTS, SiteCrashed, SiteFault, SiteTimeout
from .fsm import ClusterHealth, SiteLifecycle, SiteState, Transition
from .injection import FaultyEndpoint
from .liveness import LivenessBook
from .retry import RetryPolicy, call_with_retry
from .schedule import FaultAction, FaultKind, FaultSchedule

__all__ = [
    "LivenessBook",
    "CoverageReport",
    "CoverageTracker",
    "TupleCoverage",
    "RETRYABLE_FAULTS",
    "SiteCrashed",
    "SiteFault",
    "SiteTimeout",
    "ClusterHealth",
    "SiteLifecycle",
    "SiteState",
    "Transition",
    "FaultyEndpoint",
    "RetryPolicy",
    "call_with_retry",
    "FaultAction",
    "FaultKind",
    "FaultSchedule",
]

"""A shared liveness snapshot: at most one ping per endpoint per epoch.

The coordinator gives every DOWN site (and every failed-over primary)
one in-band liveness probe per iteration — a CONTROL message answered
by ``queue_size()``.  Solo that is already the minimum; but the serving
layer (:mod:`repro.serve`) multiplexes many concurrent queries over the
*same* shared sites, and without coordination a dead site would be
pinged once per in-flight query per iteration.

A :class:`LivenessBook` is the coordination point: the owner (one
query, or a service scheduling pass) calls :meth:`advance` to open a
new epoch, and every coordinator holding the book reuses any verdict
already recorded this epoch instead of re-probing.  The first query to
ask pays the one CONTROL message; the rest read the snapshot for free.

Verdicts are keyed by an arbitrary hashable — the coordinator uses
``(kind, site_id)`` so the probe of a failed-over *primary* never
shadows the probe of the logical site's serving endpoint.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

__all__ = ["LivenessBook"]


class LivenessBook:
    """Epoch-scoped cache of site liveness verdicts.

    Not thread-safe by design: the serving layer drives every session
    on one asyncio event loop, and a solo coordinator is single-
    threaded outside its broadcast pool (which never probes liveness).
    """

    def __init__(self) -> None:
        self._epoch = 0
        self._verdicts: Dict[Hashable, bool] = {}
        #: Probes answered from the snapshot instead of the network —
        #: the messages the sharing saved (observability, not billing).
        self.hits = 0
        self.probes = 0

    @property
    def epoch(self) -> int:
        return self._epoch

    def advance(self) -> None:
        """Open a new epoch: every cached verdict becomes stale."""
        self._epoch += 1
        self._verdicts.clear()

    def lookup(self, key: Hashable) -> Optional[bool]:
        """The verdict recorded this epoch, or ``None`` if unprobed."""
        verdict = self._verdicts.get(key)
        if verdict is not None:
            self.hits += 1
        return verdict

    def record(self, key: Hashable, alive: bool) -> None:
        """Journal one real probe's outcome for the rest of the epoch."""
        self.probes += 1
        self._verdicts[key] = alive

    def __len__(self) -> int:
        return len(self._verdicts)

"""The per-site lifecycle state machine the coordinator tracks.

Each participant endpoint has exactly one :class:`SiteLifecycle` at the
coordinator, moving through

::

               retry failed            retries exhausted
        UP ───────────────▶ SUSPECT ───────────────────▶ DOWN
        ▲                      │                           │
        │   retry succeeded    │            liveness probe │
        ├──────────────────────┘            answered       ▼
        │                                              RECOVERING
        └──────────────────────────────────────────────────┘
                      reintegration complete
                 (reintegration failure → DOWN)

The FSM is bookkeeping, not policy: the retry layer decides *when* to
give up, the coordinator decides *what* a DOWN site means for the
answer (see :mod:`~repro.fault.coverage`).  Every transition is
recorded with its reason, so a chaos run can be audited after the
fact.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List

__all__ = ["SiteState", "Transition", "SiteLifecycle", "ClusterHealth"]


class SiteState(enum.Enum):
    """Where a site currently stands in the coordinator's eyes."""

    UP = "up"                  # answering normally
    SUSPECT = "suspect"        # at least one failed attempt this RPC
    DOWN = "down"              # retries exhausted; excluded from rounds
    RECOVERING = "recovering"  # answered a liveness probe; being reintegrated


_ALLOWED: Dict[SiteState, frozenset] = {
    SiteState.UP: frozenset({SiteState.SUSPECT, SiteState.DOWN}),
    SiteState.SUSPECT: frozenset({SiteState.UP, SiteState.DOWN}),
    SiteState.DOWN: frozenset({SiteState.RECOVERING}),
    SiteState.RECOVERING: frozenset({SiteState.UP, SiteState.DOWN}),
}


@dataclass(frozen=True)
class Transition:
    """One recorded state change."""

    site_id: int
    old: SiteState
    new: SiteState
    reason: str


class SiteLifecycle:
    """The FSM instance for one site."""

    def __init__(self, site_id: int) -> None:
        self.site_id = site_id
        self.state = SiteState.UP
        self.history: List[Transition] = []
        self.consecutive_failures = 0

    def to(self, new: SiteState, reason: str = "") -> None:
        """Transition to ``new``; a no-op when already there."""
        if new is self.state:
            return
        if new not in _ALLOWED[self.state]:
            raise ValueError(
                f"site {self.site_id}: illegal transition "
                f"{self.state.value} -> {new.value} ({reason or 'no reason'})"
            )
        self.history.append(Transition(self.site_id, self.state, new, reason))
        self.state = new
        if new is SiteState.UP:
            self.consecutive_failures = 0

    # Convenience predicates the hot paths read.
    @property
    def is_up(self) -> bool:
        return self.state is SiteState.UP

    @property
    def is_down(self) -> bool:
        return self.state is SiteState.DOWN

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state is SiteState.UP:
            self.to(SiteState.SUSPECT, "rpc attempt failed")


class ClusterHealth:
    """All site lifecycles, plus the aggregate views the coordinator uses."""

    def __init__(self, site_ids: Iterable[int]) -> None:
        self._lifecycles: Dict[int, SiteLifecycle] = {
            site_id: SiteLifecycle(site_id) for site_id in site_ids
        }
        #: Sites currently DOWN or RECOVERING.  Keeping the set explicit
        #: makes the per-iteration recovery poll free while everything
        #: is healthy.
        self._unhealthy: set = set()

    def lifecycle(self, site_id: int) -> SiteLifecycle:
        return self._lifecycles[site_id]

    def state(self, site_id: int) -> SiteState:
        return self._lifecycles[site_id].state

    def is_down(self, site_id: int) -> bool:
        return self._lifecycles[site_id].is_down

    @property
    def any_down(self) -> bool:
        return bool(self._unhealthy)

    def down_sites(self) -> List[int]:
        return sorted(
            site_id for site_id, lc in self._lifecycles.items() if lc.is_down
        )

    def up_sites(self) -> List[int]:
        return sorted(
            site_id for site_id, lc in self._lifecycles.items() if lc.is_up
        )

    def mark_suspect(self, site_id: int) -> None:
        self._lifecycles[site_id].record_failure()

    def mark_down(self, site_id: int, reason: str = "") -> None:
        lc = self._lifecycles[site_id]
        if not lc.is_down:
            lc.to(SiteState.DOWN, reason)
            self._unhealthy.add(site_id)

    def mark_recovering(self, site_id: int, reason: str = "") -> None:
        self._lifecycles[site_id].to(SiteState.RECOVERING, reason)

    def mark_up(self, site_id: int, reason: str = "") -> None:
        self._lifecycles[site_id].to(SiteState.UP, reason)
        self._unhealthy.discard(site_id)

    def transitions(self) -> List[Transition]:
        """Every recorded transition, in per-site order."""
        out: List[Transition] = []
        for site_id in sorted(self._lifecycles):
            out.extend(self._lifecycles[site_id].history)
        return out

"""The transport-fault exception family.

Every layer that can lose a site — the TCP proxy, the fault-injection
decorator, the coordinator's RPC wrapper — raises or catches these, so
"the site is unreachable" looks the same regardless of whether the
cause is a real socket error or an injected one.

The classes deliberately subclass the builtins (:class:`ConnectionError`,
:class:`TimeoutError`) so code written against plain sockets keeps
working unchanged.
"""

from __future__ import annotations

__all__ = ["SiteFault", "SiteCrashed", "SiteTimeout", "RETRYABLE_FAULTS"]


class SiteFault(ConnectionError):
    """A site RPC failed for transport (not application) reasons."""

    def __init__(self, site_id: int, message: str) -> None:
        super().__init__(f"site {site_id}: {message}")
        self.site_id = site_id


class SiteCrashed(SiteFault):
    """The site process is gone: connection refused / reset / injected crash."""


class SiteTimeout(SiteFault, TimeoutError):
    """The site did not answer within the deadline (real or injected)."""


#: What the retry layer treats as transient and worth another attempt.
#: Application errors (``RuntimeError`` from a site's own logic) are
#: authoritative and deliberately absent — retrying them cannot help.
RETRYABLE_FAULTS = (ConnectionError, TimeoutError, OSError)

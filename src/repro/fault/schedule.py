"""Deterministic, seedable fault plans.

A :class:`FaultSchedule` says, for every ``(site, method, call index)``
triple, whether that RPC should succeed, crash, time out, or be slowed
down.  Call indices are per site and 1-based, counted by the
:class:`~repro.fault.injection.FaultyEndpoint` that replays the plan —
so a chaos run is a pure function of the schedule and the workload,
and every test or benchmark failure reproduces exactly.

The five primitive fault shapes:

* ``crash(site, at_call=N)``              — crash-at-round-N, permanent.
* ``crash(site, at_call=N, until_call=M)``— fail-then-recover window.
* ``timeout(site, at_call=N, ...)``       — like crash but raises a
  timeout, which the retry layer treats as transient.
* ``slow(site, delay, ...)``              — slow-reply: delay, then
  answer normally (exercises RPC deadlines).
* ``flaky(site, probability)``            — each call independently
  fails with probability ``p``, derived deterministically from the
  schedule seed, the site and the call index (no hidden RNG state).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["FaultKind", "FaultAction", "FaultSchedule"]


class FaultKind(enum.Enum):
    """What an injected fault does to the RPC."""

    CRASH = "crash"      # raise SiteCrashed; the call never reaches the site
    TIMEOUT = "timeout"  # raise SiteTimeout; the call never reaches the site
    DELAY = "delay"      # sleep, then let the call through


@dataclass(frozen=True)
class FaultAction:
    """The schedule's verdict for one RPC."""

    kind: FaultKind
    delay: float = 0.0


@dataclass(frozen=True)
class _Rule:
    kind: FaultKind
    at_call: int
    until_call: Optional[int]       # exclusive; None = forever
    methods: Optional[frozenset]    # None = every protocol method
    probability: Optional[float]    # None = always within the window
    delay: float

    def matches(self, method: str, call_index: int) -> bool:
        if self.methods is not None and method not in self.methods:
            return False
        if call_index < self.at_call:
            return False
        if self.until_call is not None and call_index >= self.until_call:
            return False
        return True


def _deterministic_unit(seed: int, site_id: int, call_index: int) -> float:
    """A reproducible pseudo-random float in [0, 1) for one RPC.

    Mixing the coordinates into one integer seed keeps the draw
    independent of call order and of Python's hash randomisation.
    """
    mixed = (seed * 1_000_003 + site_id * 8_191 + call_index) & 0xFFFFFFFF
    return random.Random(mixed).random()


class FaultSchedule:
    """A reproducible per-site fault plan (builder-style, chainable)."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rules: Dict[int, List[_Rule]] = {}

    # ------------------------------------------------------------------
    # builders
    # ------------------------------------------------------------------

    def _add(self, site_id: int, rule: _Rule) -> "FaultSchedule":
        self._rules.setdefault(site_id, []).append(rule)
        return self

    def crash(
        self,
        site_id: int,
        at_call: int = 1,
        until_call: Optional[int] = None,
        methods: Optional[List[str]] = None,
    ) -> "FaultSchedule":
        """Site refuses every RPC from ``at_call`` (until ``until_call``)."""
        return self._add(
            site_id,
            _Rule(
                FaultKind.CRASH, at_call, until_call,
                frozenset(methods) if methods else None, None, 0.0,
            ),
        )

    def timeout(
        self,
        site_id: int,
        at_call: int = 1,
        until_call: Optional[int] = None,
        methods: Optional[List[str]] = None,
    ) -> "FaultSchedule":
        """Site times out on every RPC in the window."""
        return self._add(
            site_id,
            _Rule(
                FaultKind.TIMEOUT, at_call, until_call,
                frozenset(methods) if methods else None, None, 0.0,
            ),
        )

    def slow(
        self,
        site_id: int,
        delay: float,
        at_call: int = 1,
        until_call: Optional[int] = None,
        methods: Optional[List[str]] = None,
    ) -> "FaultSchedule":
        """Site answers, but only after ``delay`` seconds."""
        return self._add(
            site_id,
            _Rule(
                FaultKind.DELAY, at_call, until_call,
                frozenset(methods) if methods else None, None, delay,
            ),
        )

    def flaky(
        self,
        site_id: int,
        probability: float,
        kind: FaultKind = FaultKind.TIMEOUT,
        at_call: int = 1,
        until_call: Optional[int] = None,
        methods: Optional[List[str]] = None,
    ) -> "FaultSchedule":
        """Each RPC in the window independently fails with ``probability``."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability!r}")
        return self._add(
            site_id,
            _Rule(
                kind, at_call, until_call,
                frozenset(methods) if methods else None, probability, 0.0,
            ),
        )

    # ------------------------------------------------------------------
    # the verdict
    # ------------------------------------------------------------------

    def decide(
        self, site_id: int, method: str, call_index: int
    ) -> Optional[FaultAction]:
        """The fault (if any) for one RPC; first matching rule wins."""
        for rule in self._rules.get(site_id, ()):
            if not rule.matches(method, call_index):
                continue
            if rule.probability is not None:
                draw = _deterministic_unit(self.seed, site_id, call_index)
                if draw >= rule.probability:
                    continue
            return FaultAction(kind=rule.kind, delay=rule.delay)
        return None

    def __bool__(self) -> bool:
        return bool(self._rules)

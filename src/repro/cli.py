"""Command-line interface: ``python -m repro <command>``.

Three commands make the library usable without writing Python:

``generate``
    Produce an uncertain relation (synthetic distributions or the
    NYSE-like trade trace) as CSV/JSONL.

``query``
    Load a relation, partition it over ``m`` simulated sites, run any
    of the four algorithms (optionally top-k, preference, subspace),
    and print the qualified skyline plus the bandwidth bill.

``info``
    Describe a relation file: cardinality, dimensionality, probability
    stats, conventional skyline size, and the H(d, N) estimate.

``serve``
    Load a relation and drive a closed-loop multi-query workload
    through the async serving layer (:mod:`repro.serve`): ``k``
    clients submit a seed-deterministic stochastic query mix, and the
    summary reports latency percentiles, throughput, and per-tenant
    bandwidth spend.

``stream``
    Register a standing query against a seeded synthetic uncertain
    stream (:mod:`repro.stream`) and print the ordered ENTER/EXIT/
    RESCORE deltas each published epoch produces, plus the edge
    pre-filter's suppressed-vs-shipped bill.

``advise``
    Recommend an algorithm from the Eqs. 6-8 cost model.

Figure regeneration lives in its own entry point,
``python -m repro.bench`` (see README).
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

import numpy as np

from .core.dominance import Preference
from .core.cardinality import expected_skyline_cardinality
from .core.skyline import skyline
from .core.tuples import tuples_from_arrays, validate_database
from .data.io import load_tuples, save_tuples
from .data.nyse import attach_uncertainty, generate_nyse_trades
from .data.partition import (
    partition_angle,
    partition_range,
    partition_round_robin,
    partition_uniform,
)
from .data.probabilities import generate_probabilities
from .data.synthetic import DISTRIBUTIONS, generate_values
from .distributed.query import ALGORITHMS, distributed_skyline

__all__ = ["main"]

_PARTITIONERS = {
    "uniform": lambda ts, m, seed: partition_uniform(ts, m, rng=random.Random(seed)),
    "round-robin": lambda ts, m, seed: partition_round_robin(ts, m),
    "range": lambda ts, m, seed: partition_range(ts, m),
    "angle": lambda ts, m, seed: partition_angle(ts, m),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Distributed skyline queries over uncertain data.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate an uncertain relation")
    gen.add_argument("output", help="output file (.csv or .jsonl)")
    gen.add_argument(
        "--distribution",
        choices=sorted(DISTRIBUTIONS) + ["nyse"],
        default="independent",
    )
    gen.add_argument("-n", "--cardinality", type=int, default=10_000)
    gen.add_argument("-d", "--dimensionality", type=int, default=3)
    gen.add_argument(
        "--probabilities", choices=["uniform", "gaussian", "constant"],
        default="uniform",
    )
    gen.add_argument("--mean", type=float, default=0.5, help="gaussian mean")
    gen.add_argument("--std", type=float, default=0.2, help="gaussian std")
    gen.add_argument("--seed", type=int, default=None)

    query = sub.add_parser("query", help="run a distributed skyline query")
    query.add_argument("data", help="relation file (.csv or .jsonl)")
    query.add_argument("-q", "--threshold", type=float, default=0.3)
    query.add_argument(
        "-a", "--algorithm", choices=sorted(ALGORITHMS), default="edsud"
    )
    query.add_argument("-m", "--sites", type=int, default=10)
    query.add_argument(
        "--partition", choices=sorted(_PARTITIONERS), default="uniform"
    )
    query.add_argument(
        "--preference",
        default=None,
        help="comma-separated directions, e.g. 'min,max,min'",
    )
    query.add_argument(
        "--subspace",
        default=None,
        help="comma-separated dimension indices, e.g. '0,2'",
    )
    query.add_argument("-k", "--limit", type=int, default=None, help="top-k")
    query.add_argument("--seed", type=int, default=0, help="partitioning seed")
    query.add_argument(
        "--max-print", type=int, default=20, help="result rows to print"
    )
    query.add_argument(
        "--trace", default=None, metavar="FILE",
        help="dump the full protocol conversation as JSONL",
    )
    query.add_argument(
        "--chaos",
        choices=["crash", "recover", "timeout", "flaky"],
        default=None,
        help="inject a deterministic site fault: permanent crash, "
        "fail-then-recover window, transient timeouts, or flaky-p drops",
    )
    query.add_argument(
        "--chaos-site", type=int, default=0, metavar="I",
        help="site the fault targets (default 0)",
    )
    query.add_argument(
        "--chaos-at", type=int, default=8, metavar="CALL",
        help="per-site RPC index at which the fault starts (default 8)",
    )
    query.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed for flaky-p draws and retry jitter",
    )
    query.add_argument(
        "--replication-factor", type=int, default=1, metavar="F",
        help="copies of every partition (default 1 = unreplicated); with "
        "F>=2 a failed primary fails over to a buddy replica and the "
        "answer stays exact instead of degrading to Corollary-1 bounds",
    )

    info = sub.add_parser("info", help="describe a relation file")
    info.add_argument("data", help="relation file (.csv or .jsonl)")

    serve = sub.add_parser(
        "serve", help="drive a multi-query workload through the serving layer"
    )
    serve.add_argument("data", help="relation file (.csv or .jsonl)")
    serve.add_argument("-m", "--sites", type=int, default=4)
    serve.add_argument(
        "--partition", choices=sorted(_PARTITIONERS), default="uniform"
    )
    serve.add_argument(
        "--queries", type=int, default=16,
        help="size of the sampled query mix (default 16)",
    )
    serve.add_argument(
        "--clients", type=int, default=4,
        help="closed-loop clients submitting concurrently (default 4)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=8,
        help="sessions stepped concurrently by the scheduler (default 8)",
    )
    serve.add_argument(
        "--tenants", default="default", metavar="A,B",
        help="comma-separated tenant names the mix draws from",
    )
    serve.add_argument(
        "--budget", type=float, default=None, metavar="TUPLES",
        help="per-tenant bandwidth budget in transmitted tuples "
        "(default: unmetered)",
    )
    serve.add_argument(
        "--seed", type=int, default=0,
        help="seed for partitioning and the query mix",
    )

    stream = sub.add_parser(
        "stream",
        help="run a standing query over a synthetic stream, printing deltas",
    )
    stream.add_argument(
        "-q", "--threshold", type=float, default=0.3,
        help="standing query probability threshold (default 0.3)",
    )
    stream.add_argument(
        "--subspace", default=None,
        help="comma-separated dimension indices, e.g. '0,2'",
    )
    stream.add_argument("-k", "--limit", type=int, default=None, help="top-k")
    stream.add_argument("-m", "--sites", type=int, default=3)
    stream.add_argument("-n", "--arrivals", type=int, default=300)
    stream.add_argument("-d", "--dimensionality", type=int, default=3)
    stream.add_argument(
        "--distribution", choices=sorted(DISTRIBUTIONS), default="independent"
    )
    stream.add_argument(
        "--window", choices=["count", "sliding-time", "tumbling-time"],
        default="count",
    )
    stream.add_argument(
        "--window-size", type=float, default=60,
        help="count capacity, or span in seconds for the time kinds",
    )
    stream.add_argument(
        "--epoch-every", type=int, default=25, metavar="N",
        help="publish an epoch every N arrivals (default 25)",
    )
    stream.add_argument(
        "--max-print", type=int, default=40,
        help="delta rows to print (default 40)",
    )
    stream.add_argument("--seed", type=int, default=0)

    advise = sub.add_parser(
        "advise", help="recommend an algorithm from the Eqs. 6-8 cost model"
    )
    advise.add_argument("-n", "--cardinality", type=int, required=True)
    advise.add_argument("-d", "--dimensionality", type=int, required=True)
    advise.add_argument("-m", "--sites", type=int, required=True)
    advise.add_argument("-q", "--threshold", type=float, default=0.3)
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    if args.distribution == "nyse":
        trades = generate_nyse_trades(args.cardinality, rng=rng)
        tuples = attach_uncertainty(
            trades, kind=args.probabilities, rng=rng, mean=args.mean, std=args.std
        )
    else:
        values = generate_values(
            args.distribution, args.cardinality, args.dimensionality, rng=rng
        )
        probs = generate_probabilities(
            args.probabilities, args.cardinality, rng=rng,
            mean=args.mean, std=args.std,
        )
        tuples = tuples_from_arrays(values, probs)
    save_tuples(args.output, tuples)
    d = tuples[0].dimensionality if tuples else 0
    print(f"wrote {len(tuples)} tuples (d={d}) to {args.output}")
    return 0


def _parse_preference(args: argparse.Namespace) -> Optional[Preference]:
    directions = None
    subspace = None
    if args.preference:
        directions = Preference.of(args.preference).directions
    if args.subspace:
        subspace = tuple(int(x) for x in args.subspace.split(","))
    if directions is None and subspace is None:
        return None
    return Preference(directions=directions, subspace=subspace)


def _build_chaos(args: argparse.Namespace):
    """Translate the --chaos flags into (FaultSchedule, RetryPolicy)."""
    from .fault.retry import RetryPolicy
    from .fault.schedule import FaultSchedule

    schedule = FaultSchedule(seed=args.chaos_seed)
    site, at = args.chaos_site, args.chaos_at
    if args.chaos == "crash":
        schedule.crash(site, at_call=at)
    elif args.chaos == "recover":
        schedule.crash(site, at_call=at, until_call=at + 8)
    elif args.chaos == "timeout":
        schedule.timeout(site, at_call=at, until_call=at + 3)
    elif args.chaos == "flaky":
        schedule.flaky(site, probability=0.2)
    policy = RetryPolicy(max_attempts=3, base_backoff=0.01, seed=args.chaos_seed)
    return schedule, policy


def _cmd_query(args: argparse.Namespace) -> int:
    tuples = load_tuples(args.data)
    if not tuples:
        print("relation is empty; nothing to query")
        return 0
    preference = _parse_preference(args)
    partitions = _PARTITIONERS[args.partition](tuples, args.sites, args.seed)
    chaos_kwargs = {}
    if args.chaos:
        if args.algorithm not in ("dsud", "edsud"):
            print("--chaos requires a progressive algorithm (dsud/edsud)")
            return 2
        schedule, policy = _build_chaos(args)
        chaos_kwargs = {"fault_schedule": schedule, "retry_policy": policy}
    if args.replication_factor > 1:
        if args.algorithm not in ("dsud", "edsud"):
            print(
                "--replication-factor requires a progressive algorithm "
                "(dsud/edsud)"
            )
            return 2
        if args.trace:
            print("--replication-factor does not compose with --trace")
            return 2
    if args.trace:
        from .distributed.query import ALGORITHMS, build_sites
        from .net.trace import ProtocolTracer, summarize_trace

        tracer = ProtocolTracer()
        sites = tracer.wrap(build_sites(partitions, preference=preference))
        coordinator_cls = ALGORITHMS[args.algorithm]
        kwargs = {"limit": args.limit} if args.algorithm in ("dsud", "edsud") else {}
        if chaos_kwargs:
            from .fault.injection import FaultyEndpoint

            sites = [
                FaultyEndpoint(s, chaos_kwargs["fault_schedule"]) for s in sites
            ]
            kwargs["retry_policy"] = chaos_kwargs["retry_policy"]
        with coordinator_cls(sites, args.threshold, preference, **kwargs) as coord:
            result = coord.run()
        tracer.save(args.trace)
        summary = summarize_trace(tracer.records)
        print(f"trace: {len(tracer)} RPCs -> {args.trace} "
              f"(pruned {summary['candidates_pruned_at_sites']} at sites)")
    else:
        result = distributed_skyline(
            partitions,
            args.threshold,
            algorithm=args.algorithm,
            preference=preference,
            limit=args.limit,
            replication_factor=args.replication_factor,
            **chaos_kwargs,
        )
    print(result.summary())
    print(
        f"simulated network time: {result.stats.simulated_time:.3f}s over "
        f"{result.stats.rounds} rounds"
    )
    if args.chaos:
        stats = result.stats
        print(
            f"chaos: failures={stats.rpc_failures} retries={stats.rpc_retries} "
            f"sites lost={stats.sites_lost} recovered={stats.sites_recovered}"
        )
        if args.replication_factor > 1:
            sync = result.stats.by_kind.get("replica_sync", 0)
            digests = result.stats.by_kind.get("digest", 0)
            print(
                f"replication: factor={args.replication_factor} "
                f"failovers={stats.failovers} failbacks={stats.failbacks} "
                f"sync msgs={sync} digests={digests}"
            )
        coverage = result.coverage
        if coverage is not None and coverage.degraded:
            buffered = set(coverage.buffered)
            print("degraded tuples (Corollary-1 upper bounds):")
            for key, (bound, contributing) in sorted(coverage.degraded.items()):
                note = " [buffered: top-k order unprovable]" if key in buffered else ""
                print(
                    f"  key={key} upper_bound={bound:.4f} "
                    f"contributing_sites={list(contributing)}{note}"
                )
    print()
    shown = list(result.answer)[: args.max_print]
    width = max((len(str(m.key)) for m in shown), default=3)
    print(f"{'key'.rjust(width)}  {'P_g-sky':>8}  values")
    for member in shown:
        values = ", ".join(f"{v:g}" for v in member.tuple.values)
        print(f"{str(member.key).rjust(width)}  {member.probability:>8.4f}  ({values})")
    hidden = result.result_count - len(shown)
    if hidden > 0:
        print(f"... and {hidden} more (raise --max-print)")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    tuples = load_tuples(args.data)
    d = validate_database(tuples)
    n = len(tuples)
    print(f"{args.data}: N={n} d={d}")
    if not tuples:
        return 0
    probs = [t.probability for t in tuples]
    print(
        f"probabilities: min={min(probs):.4f} mean={sum(probs) / n:.4f} "
        f"max={max(probs):.4f}"
    )
    sample = tuples if n <= 20_000 else tuples[:20_000]
    conventional = len(skyline(sample))
    suffix = "" if sample is tuples else f" (first {len(sample)} tuples)"
    print(f"conventional skyline: {conventional}{suffix}")
    print(f"H(d, N) estimate: {expected_skyline_cardinality(d, n):.1f}")

    from .core.statistics import (
        dimension_correlations,
        dominance_profile,
        probability_profile,
        skyline_layers,
    )

    profile = probability_profile(sample)
    bar = " ".join(str(c) for c in profile.histogram)
    print(f"probability histogram (10 bins): {bar}")
    corr = dimension_correlations(sample)
    if d > 1:
        off = [corr[i][j] for i in range(d) for j in range(d) if i < j]
        print(f"mean pairwise correlation: {sum(off) / len(off):+.3f}")
    layers = skyline_layers(sample, max_layers=5)
    print(f"skyline layer sizes (first 5): {[len(layer) for layer in layers]}")
    dom = dominance_profile(sample, sample=min(200, n))
    print(
        f"dominators per tuple (sampled): mean={dom['mean_dominators']:.1f} "
        f"max={dom['max_dominators']:.0f} "
        f"undominated={dom['undominated_fraction'] * 100:.1f}%"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import time
    from collections import deque

    from .bench.service import _percentile
    from .data.workload import sample_query_mix
    from .serve import (
        AdmissionPolicy,
        AdmissionRejected,
        QuerySession,
        QuerySpec,
        SessionState,
        SkylineService,
    )

    tuples = load_tuples(args.data)
    if not tuples:
        print("relation is empty; nothing to serve")
        return 0
    d = validate_database(tuples)
    tenants = tuple(t.strip() for t in args.tenants.split(",") if t.strip())
    if not tenants:
        tenants = ("default",)
    partitions = _PARTITIONERS[args.partition](tuples, args.sites, args.seed)
    draws = sample_query_mix(args.queries, d, seed=args.seed, tenants=tenants)
    specs = [
        QuerySpec(
            threshold=draw.threshold,
            algorithm=draw.algorithm,
            preference=(
                Preference(subspace=draw.subspace) if draw.subspace else None
            ),
            limit=draw.limit,
            batch_size=draw.batch_size,
            tenant=draw.tenant,
        )
        for draw in draws
    ]
    budgets = (
        {tenant: args.budget for tenant in tenants}
        if args.budget is not None
        else None
    )
    policy = AdmissionPolicy(
        max_inflight=args.max_inflight, max_queued=max(1, args.queries)
    )
    sessions: List[QuerySession] = []
    rejected = 0

    async def _drive() -> tuple:
        nonlocal rejected
        work = deque(specs)
        async with SkylineService(
            partitions, policy=policy, tenant_budgets=budgets
        ) as service:
            start = time.perf_counter()

            async def client() -> None:
                nonlocal rejected
                while work:
                    spec = work.popleft()
                    try:
                        session = await service.submit(spec, wait=True)
                    except AdmissionRejected:
                        rejected += 1
                        continue
                    sessions.append(session)
                    while not session.done:
                        await asyncio.sleep(0)

            workers = [
                asyncio.ensure_future(client())
                for _ in range(max(1, args.clients))
            ]
            await asyncio.gather(*workers)
            await service.drain()
            elapsed = time.perf_counter() - start
            spent = dict(service.ledger.spent)
        return elapsed, spent

    elapsed, spent = asyncio.run(_drive())
    finished = [s for s in sessions if s.state is SessionState.FINISHED]
    failed = sum(1 for s in sessions if s.state is SessionState.FAILED)
    aborted = sum(1 for s in sessions if s.state is SessionState.ABORTED)
    latencies = [s.latency for s in finished if s.latency is not None]
    first = [
        s.first_result_latency
        for s in finished
        if s.first_result_latency is not None
    ]
    print(
        f"served {len(sessions)} queries over {args.sites} sites "
        f"(clients={max(1, args.clients)} max-inflight={args.max_inflight} "
        f"seed={args.seed})"
    )
    print(
        f"finished={len(finished)} failed={failed} aborted={aborted} "
        f"rejected={rejected}"
    )
    if elapsed > 0:
        print(f"throughput: {len(finished) / elapsed:.1f} queries/s")
    print(
        f"latency: p50={_percentile(latencies, 0.50) * 1e3:.2f}ms "
        f"p95={_percentile(latencies, 0.95) * 1e3:.2f}ms "
        f"p99={_percentile(latencies, 0.99) * 1e3:.2f}ms "
        f"first-result p50={_percentile(first, 0.50) * 1e3:.2f}ms"
    )
    total = sum(s.transmitted_tuples for s in sessions)
    print(f"bandwidth: {total} tuples transmitted")
    for tenant in sorted(spent):
        cap = f"/{args.budget:g}" if args.budget is not None else ""
        print(f"  tenant {tenant}: {spent[tenant]:g}{cap} tuples")
    return 1 if failed else 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from .data.workload import make_synthetic_stream
    from .stream import (
        ContinuousCoordinator,
        StandingQuery,
        StreamSite,
        make_window,
    )

    preference = None
    if args.subspace:
        preference = Preference(
            subspace=tuple(int(x) for x in args.subspace.split(","))
        )
    arrivals = make_synthetic_stream(
        distribution=args.distribution,
        n=args.arrivals,
        d=args.dimensionality,
        sites=args.sites,
        seed=args.seed,
    )
    coordinator = ContinuousCoordinator(
        [
            StreamSite(i, make_window(args.window, args.window_size))
            for i in range(args.sites)
        ]
    )
    query_id = coordinator.register(
        StandingQuery(
            threshold=args.threshold, preference=preference, limit=args.limit
        )
    )
    print(
        f"standing query {query_id}: q={args.threshold} "
        f"window={args.window}({args.window_size:g}) sites={args.sites} "
        f"seed={args.seed}"
    )
    printed = 0
    total_deltas = 0
    for i, arrival in enumerate(arrivals):
        coordinator.ingest(arrival.site_id, arrival.tuple, arrival.stamp)
        if (i + 1) % max(1, args.epoch_every) == 0:
            for delta in coordinator.close_epoch():
                total_deltas += 1
                if printed < args.max_print:
                    print(f"  {delta.describe()}")
                    printed += 1
    if total_deltas > printed:
        print(f"  ... and {total_deltas - printed} more (raise --max-print)")
    standing = coordinator.result(query_id)
    print(
        f"standing result after epoch {coordinator.epoch}: "
        f"{len(standing)} tuples"
    )
    shipped = coordinator.candidates_shipped
    naive = coordinator.arrivals_total
    suppressed = naive - shipped
    ratio = suppressed / naive * 100 if naive else 0.0
    print(
        f"edge pre-filter: shipped {shipped}/{naive} candidate tuples uplink "
        f"(suppressed {suppressed}, {ratio:.1f}%); "
        f"{coordinator.replicas_shipped} replica tuples down; "
        f"{coordinator.stats.tuples_transmitted} total on the books"
    )
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from .distributed.advisor import recommend_algorithm

    algorithm, estimates = recommend_algorithm(
        args.cardinality, args.dimensionality, args.sites, args.threshold
    )
    print(
        f"N={args.cardinality} d={args.dimensionality} m={args.sites} "
        f"q={args.threshold}"
    )
    for name, value in estimates.as_dict().items():
        print(f"  expected tuples ({name}): {value:,.0f}")
    print(f"recommendation: {algorithm}")
    if algorithm == "ship-all":
        print(
            "  (the broadcast lower bound |SKY| x m already rivals N; "
            "iterating cannot pay off)"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "query": _cmd_query,
        "info": _cmd_info,
        "serve": _cmd_serve,
        "stream": _cmd_stream,
        "advise": _cmd_advise,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

"""The async multi-query serving layer.

One :class:`SkylineService` turns the repo's single-query protocol
stack into a server: many concurrent progressive skyline queries
multiplexed over shared standing sites on one asyncio event loop, with
admission control, per-tenant bandwidth budgets, and amortized
``prepare``/replica provisioning.  See ``docs/serving.md`` for the
architecture and :mod:`repro.bench.service` for the load-test harness.

* :mod:`~repro.serve.sites` — shared partitions (:class:`SharedSiteHost`)
  and pre-provisioned replicas (:class:`StandingReplicaBook`).
* :mod:`~repro.serve.session` — per-query state (:class:`QuerySpec`,
  :class:`QuerySession`).
* :mod:`~repro.serve.subscription` — long-lived standing-query sessions
  (:class:`SubscriptionSession`) fed by the stream plane.
* :mod:`~repro.serve.admission` — concurrency caps and tenant budgets.
* :mod:`~repro.serve.service` — the scheduler tying it together.
"""

from .admission import AdmissionPolicy, AdmissionRejected, TenantLedger
from .service import SkylineService
from .session import QuerySession, QuerySpec, SessionState
from .sites import SharedSiteHost, StandingReplicaBook
from .subscription import SubscriptionSession, SubscriptionState

__all__ = [
    "AdmissionPolicy",
    "AdmissionRejected",
    "TenantLedger",
    "SkylineService",
    "QuerySession",
    "QuerySpec",
    "SessionState",
    "SharedSiteHost",
    "StandingReplicaBook",
    "SubscriptionSession",
    "SubscriptionState",
]

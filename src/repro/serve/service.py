"""The :class:`SkylineService`: many progressive queries, one cluster.

The service multiplexes concurrent :class:`~repro.serve.session.QuerySession`\\ s
on a single asyncio event loop, over either shared in-process
:class:`~repro.serve.sites.SharedSiteHost` partitions or a *remote*
cluster of site servers dialed through
:func:`~repro.net.aio.connect_async_sites`.  Scheduling is cooperative
and fair: every pass admits queued sessions up to the in-flight cap,
awaits one coordinator iteration from each running session, then
yields to the loop so submitters (and any async transport I/O) run
between passes.  With ``overlap_steps`` (the default) the per-session
steps of one pass run under ``asyncio.gather``, so a session parked on
a site socket donates the loop to its siblings' compute — the pass
lasts as long as its slowest step, not the sum.

Correctness under concurrency is by *isolation*, not locking: a
session's coordinator, site forks (or privately dialed proxies), fault
wrappers, and stats books are all private, so stepping order cannot
change any query's answer, message accounting, or emission order —
each session stays bit-identical to the same spec run solo (the
exactness suites pin this, sync and async alike).  The only shared
query-path state is deliberately one-way:

* the hosts' skyline memo (an answer cache — hit or miss, same bytes),
* the :class:`~repro.fault.liveness.LivenessBook`, advanced once per
  scheduling pass so all *fault-free* sessions share one liveness
  probe per dead endpoint per pass.  Sessions running a private chaos
  :class:`~repro.fault.schedule.FaultSchedule` get no book (their
  verdicts are theirs alone), which keeps them exactly on the solo
  probe cadence.

Use as an async context manager::

    async with SkylineService(partitions, policy=AdmissionPolicy(4)) as svc:
        sessions = [await svc.submit(spec) for spec in specs]
        await svc.drain()

or, against site servers hosted elsewhere (addresses as produced by
:func:`~repro.net.sockets.host_sites_in_processes`)::

    async with SkylineService(remote_sites=addresses) as svc:
        ...
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, List, Mapping, Optional, Sequence, Tuple

from ..core.tuples import UncertainTuple
from ..distributed.coordinator import Coordinator
from ..distributed.dsud import DSUD
from ..distributed.edsud import EDSUD
from ..distributed.site import SiteConfig
from ..fault.injection import FaultyEndpoint
from ..fault.liveness import LivenessBook
from ..net.aio import connect_async_sites
from ..net.stats import LatencyModel
from ..net.transport import SiteEndpoint
from ..stream.coordinator import ContinuousCoordinator
from ..stream.deltas import ResultDelta, StandingQuery
from ..stream.site import StreamSite
from ..stream.windows import Window
from .admission import AdmissionPolicy, AdmissionRejected, TenantLedger
from .session import QuerySession, QuerySpec
from .sites import SharedSiteHost, StandingReplicaBook
from .subscription import SubscriptionSession

__all__ = ["SkylineService"]


class SkylineService:
    """An admission-controlled, budget-metered multi-query server."""

    def __init__(
        self,
        partitions: Optional[Sequence[Sequence[UncertainTuple]]] = None,
        site_config: Optional[SiteConfig] = None,
        policy: Optional[AdmissionPolicy] = None,
        tenant_budgets: Optional[Mapping[str, float]] = None,
        latency_model: Optional[LatencyModel] = None,
        replica_seed: int = 0,
        remote_sites: Optional[Sequence[Tuple[int, Tuple[str, int]]]] = None,
        remote_timeout: float = 30.0,
        remote_retries: int = 0,
        overlap_steps: bool = True,
        stream_windows: Optional[Sequence[Window]] = None,
        auto_publish: bool = True,
    ) -> None:
        if partitions is not None and remote_sites is not None:
            raise ValueError(
                "pass either partitions= (in-process cluster) or "
                "remote_sites= (dial site servers), not both"
            )
        if remote_sites is None and not partitions and stream_windows is None:
            raise ValueError(
                "a service needs at least one partition (or stream_windows= "
                "for a continuous-only service)"
            )
        if remote_sites is not None and not remote_sites:
            raise ValueError("remote_sites= needs at least one address")
        self.hosts = [
            SharedSiteHost(i, partition, site_config=site_config)
            for i, partition in enumerate(partitions or ())
        ]
        self.remote_sites = (
            None if remote_sites is None else list(remote_sites)
        )
        self.remote_timeout = remote_timeout
        self.remote_retries = remote_retries
        self.overlap_steps = overlap_steps
        self.site_config = site_config
        self.policy = policy or AdmissionPolicy()
        self.ledger = TenantLedger(tenant_budgets)
        self.latency_model = latency_model
        self.replica_book = (
            StandingReplicaBook(self.hosts, seed=replica_seed)
            if self.hosts
            else None
        )
        self.liveness_book = LivenessBook()
        #: The continuous-query plane: present iff stream_windows= was
        #: given.  Standing queries subscribe against it; epochs are
        #: published by the scheduler (auto_publish) or by hand.
        self.stream: Optional[ContinuousCoordinator] = None
        if stream_windows is not None:
            if not stream_windows:
                raise ValueError("stream_windows= needs at least one window")
            self.stream = ContinuousCoordinator(
                [
                    StreamSite(i, window, site_config=site_config)
                    for i, window in enumerate(stream_windows)
                ],
                latency_model=latency_model,
            )
        self.auto_publish = auto_publish
        self._subscriptions: List[SubscriptionSession] = []
        self._stream_dirty = False
        self._stream_billed = 0
        self._subscription_ids = 0
        self._pending: Deque[QuerySession] = deque()
        self._running: List[QuerySession] = []
        self._finished: List[QuerySession] = []
        self._ids = 0
        self._passes = 0
        #: Wakes the scheduler when work arrives; wakes submitters when
        #: queue space frees up.
        self._work = asyncio.Event()
        self._space = asyncio.Event()
        self._space.set()
        self._stopping = False
        self._scheduler_task: Optional["asyncio.Task[None]"] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def __aenter__(self) -> "SkylineService":
        self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    def start(self) -> None:
        """Launch the scheduler task (idempotent)."""
        if self._scheduler_task is None:
            self._stopping = False
            loop = asyncio.get_running_loop()
            self._scheduler_task = loop.create_task(self._scheduler())

    async def close(self) -> None:
        """Finish in-flight work, then stop the scheduler.

        Active subscriptions are cancelled on the way out so their
        consumers' ``batches()`` iterators terminate.
        """
        if self._scheduler_task is None:
            return
        self._stopping = True
        self._work.set()
        task, self._scheduler_task = self._scheduler_task, None
        await task
        for subscription in self._subscriptions:
            if subscription.active:
                self._cancel_subscription(subscription, "service closed")

    # ------------------------------------------------------------------
    # the client surface
    # ------------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    @property
    def inflight(self) -> int:
        return len(self._running)

    @property
    def finished(self) -> List[QuerySession]:
        return list(self._finished)

    @property
    def passes(self) -> int:
        """Scheduling passes completed (LivenessBook epochs opened)."""
        return self._passes

    async def submit(self, spec: QuerySpec, wait: bool = True) -> QuerySession:
        """Enqueue one query; returns its session immediately.

        With a full queue, ``wait=True`` blocks until the scheduler
        frees a slot (closed-loop backpressure) and ``wait=False``
        raises :class:`AdmissionRejected` (open-loop shedding).  A
        tenant already over its bandwidth budget is rejected outright.
        In remote mode the session's site proxies are dialed here — a
        cluster that cannot be reached rejects at submission instead of
        failing mid-query.
        """
        if self._scheduler_task is None:
            raise RuntimeError("service not started; use 'async with' or start()")
        if not self.ledger.within_budget(spec.tenant):
            raise AdmissionRejected(
                f"tenant {spec.tenant!r} is over its bandwidth budget"
            )
        while len(self._pending) >= self.policy.max_queued:
            if not wait:
                raise AdmissionRejected(
                    f"queue full ({self.policy.max_queued} waiting)"
                )
            self._space.clear()
            await self._space.wait()
        session = await self._build_session(spec)
        self._pending.append(session)
        self._work.set()
        return session

    async def drain(self) -> List[QuerySession]:
        """Wait until nothing is queued or running; returns all sessions."""
        while self._pending or self._running:
            await asyncio.sleep(0)
        return self.finished

    # ------------------------------------------------------------------
    # the continuous surface: standing queries over the stream plane
    # ------------------------------------------------------------------

    @property
    def subscriptions(self) -> List[SubscriptionSession]:
        return list(self._subscriptions)

    def _require_stream(self) -> ContinuousCoordinator:
        if self.stream is None:
            raise RuntimeError(
                "this service has no stream plane; pass stream_windows= "
                "to serve standing queries"
            )
        return self.stream

    async def subscribe(self, query: StandingQuery) -> SubscriptionSession:
        """Register one standing query; returns its live session.

        Unlike one-shot queries, subscriptions never finish on their
        own, so there is no queue behind
        :attr:`~repro.serve.admission.AdmissionPolicy.max_subscriptions`
        — over the cap (or over the tenant's budget) the call raises
        :class:`AdmissionRejected` outright.
        """
        stream = self._require_stream()
        if self._scheduler_task is None:
            raise RuntimeError("service not started; use 'async with' or start()")
        if not self.ledger.within_budget(query.tenant):
            raise AdmissionRejected(
                f"tenant {query.tenant!r} is over its bandwidth budget"
            )
        active = sum(1 for s in self._subscriptions if s.active)
        if active >= self.policy.max_subscriptions:
            raise AdmissionRejected(
                f"subscription cap reached ({self.policy.max_subscriptions} active)"
            )
        query_id = stream.register(query)
        self._subscription_ids += 1
        session = SubscriptionSession(self._subscription_ids, query, query_id)
        self._subscriptions.append(session)
        return session

    def unsubscribe(self, session: SubscriptionSession) -> None:
        """Voluntarily close one subscription (idempotent)."""
        if session.active:
            self._cancel_subscription(session, None)

    def _cancel_subscription(
        self, session: SubscriptionSession, reason: Optional[str]
    ) -> None:
        if self.stream is not None:
            try:
                self.stream.unregister(session.query_id)
            except KeyError:
                pass
        session._cancel(reason)

    def ingest(
        self, site_id: int, t: UncertainTuple, stamp: Optional[float] = None
    ) -> None:
        """Feed one stream arrival; the next publish folds it in."""
        self._require_stream().ingest(site_id, t, stamp)
        self._stream_dirty = True
        self._work.set()

    def advance_stream(self, now: float) -> None:
        """Advance the stream clock (time-based windows expire)."""
        self._require_stream().advance(now)
        self._stream_dirty = True
        self._work.set()

    async def publish(self) -> List[ResultDelta]:
        """Close one stream epoch: bill delta traffic, fan batches out.

        The epoch's transmitted tuples are split equally across the
        active subscriptions and charged to their tenants; a tenant
        pushed over budget has its subscriptions cancelled here, before
        delivery — the continuous analogue of aborting a one-shot
        session at its next step.
        """
        stream = self._require_stream()
        self._stream_dirty = False
        deltas = stream.close_epoch()
        traffic = stream.stats.tuples_transmitted - self._stream_billed
        self._stream_billed = stream.stats.tuples_transmitted
        active = [s for s in self._subscriptions if s.active]
        if active and traffic:
            share = traffic / len(active)
            for session in active:
                session.billed_tuples += share
                if not self.ledger.charge(session.query.tenant, share):
                    self._cancel_subscription(
                        session,
                        f"tenant {session.query.tenant!r} bandwidth budget exhausted",
                    )
        by_query: dict = {}
        for delta in deltas:
            by_query.setdefault(delta.query_id, []).append(delta)
        for session in active:
            if not session.active:
                continue
            batch = by_query.get(session.query_id)
            if batch:
                session._deliver(batch)
        return deltas

    # ------------------------------------------------------------------
    # session assembly
    # ------------------------------------------------------------------

    async def _build_session(self, spec: QuerySpec) -> QuerySession:
        self._ids += 1
        if self.remote_sites is None:
            return QuerySession(self._ids, spec, self._build_coordinator(spec))
        coordinator, proxies = await self._build_remote_coordinator(spec)
        session = QuerySession(self._ids, spec, coordinator)
        session.owned_endpoints = list(proxies)
        return session

    def _build_coordinator(self, spec: QuerySpec) -> Coordinator:
        """Mirror :func:`~repro.distributed.query.distributed_skyline`,
        with per-session forks standing in for fresh sites."""
        sites: List[SiteEndpoint] = [
            host.view(spec.preference) for host in self.hosts
        ]
        if spec.fault_schedule is not None:
            sites = [FaultyEndpoint(site, spec.fault_schedule) for site in sites]
        replica_manager = None
        if spec.replication_factor > 1:
            assert self.replica_book is not None
            replica_manager = self.replica_book.manager_for(
                sites, spec.replication_factor, preference=spec.preference
            )
        # A chaos session's failures are its own private fiction — its
        # verdicts must not leak into (or read from) the shared book.
        book = None if spec.fault_schedule is not None else self.liveness_book
        return self._make_coordinator(spec, sites, replica_manager, book)

    async def _build_remote_coordinator(
        self, spec: QuerySpec
    ) -> Tuple[Coordinator, Sequence[SiteEndpoint]]:
        """Dial this session's own proxies to the remote cluster.

        Remote sites are other processes: chaos wrappers, standing
        replicas, and client-side preferences all assume in-process
        sites (a site server bakes its preference at hosting time), so
        a spec asking for them is a configuration error, not a degraded
        mode.
        """
        assert self.remote_sites is not None
        if spec.fault_schedule is not None:
            raise ValueError(
                "fault_schedule= injects in-process chaos; remote sites "
                "fail for real — drop it for remote mode"
            )
        if spec.replication_factor > 1:
            raise ValueError(
                "standing replicas are in-process only; remote mode "
                "requires replication_factor=1"
            )
        if spec.preference is not None:
            raise ValueError(
                "remote site servers bake their preference at hosting "
                "time; per-spec preference= is in-process only"
            )
        proxies = await connect_async_sites(
            self.remote_sites,
            timeout=self.remote_timeout,
            retries=self.remote_retries,
        )
        # Async proxies satisfy the endpoint contract awaitably; the
        # coordinator's async driver awaits whatever they return.
        sites: List[SiteEndpoint] = list(proxies)  # type: ignore[arg-type]
        coordinator = self._make_coordinator(spec, sites, None, self.liveness_book)
        return coordinator, sites

    def _make_coordinator(
        self,
        spec: QuerySpec,
        sites: Sequence[SiteEndpoint],
        replica_manager: object,
        book: Optional[LivenessBook],
    ) -> Coordinator:
        if spec.algorithm == "edsud":
            return EDSUD(
                sites,
                spec.threshold,
                spec.preference,
                self.latency_model,
                config=spec.edsud_config,
                limit=spec.limit,
                retry_policy=spec.retry_policy,
                batch_size=spec.batch_size,
                replica_manager=replica_manager,
                liveness_book=book,
            )
        if spec.algorithm == "dsud":
            if spec.edsud_config is not None:
                raise ValueError("edsud_config= requires algorithm='edsud'")
            return DSUD(
                sites,
                spec.threshold,
                spec.preference,
                self.latency_model,
                limit=spec.limit,
                retry_policy=spec.retry_policy,
                batch_size=spec.batch_size,
                replica_manager=replica_manager,
                liveness_book=book,
            )
        raise ValueError(
            f"unknown algorithm {spec.algorithm!r}; the service runs "
            f"progressive queries only (dsud/edsud)"
        )

    # ------------------------------------------------------------------
    # the scheduler
    # ------------------------------------------------------------------

    async def _admit(self) -> None:
        while self._pending and len(self._running) < self.policy.max_inflight:
            session = self._pending.popleft()
            self._space.set()
            if not self.ledger.within_budget(session.spec.tenant):
                await session.abort(
                    f"tenant {session.spec.tenant!r} over budget before start"
                )
                await session.release_endpoints()
                self._finished.append(session)
                continue
            session.start()
            self._running.append(session)

    async def _step_all(self) -> None:
        # One LivenessBook epoch per pass: every fault-free session
        # stepping below shares this pass's probe verdicts.
        self._passes += 1
        self.liveness_book.advance()
        stepping = list(self._running)
        if self.overlap_steps and len(stepping) > 1:
            # Steps overlap on the loop; gather returns verdicts in
            # submission order, so the billing sweep below is
            # deterministic no matter whose socket answered first.
            verdicts = list(
                await asyncio.gather(*(session.step() for session in stepping))
            )
        else:
            verdicts = [await session.step() for session in stepping]
        still_running: List[QuerySession] = []
        for session, done in zip(stepping, verdicts):
            delta = session.transmitted_tuples - session.billed_tuples
            session.billed_tuples = session.transmitted_tuples
            within = self.ledger.charge(session.spec.tenant, delta)
            if not within and not session.done:
                await session.abort(
                    f"tenant {session.spec.tenant!r} bandwidth budget exhausted"
                )
                done = True
            if done:
                await session.release_endpoints()
                self._finished.append(session)
            else:
                still_running.append(session)
        self._running = still_running

    def _stream_publishable(self) -> bool:
        return (
            self.auto_publish
            and self._stream_dirty
            and any(s.active for s in self._subscriptions)
        )

    async def _scheduler(self) -> None:
        while True:
            if (
                not self._pending
                and not self._running
                and not self._stream_publishable()
            ):
                if self._stopping:
                    return
                self._work.clear()
                # Woken by submit(), ingest(), or close(); never
                # busy-waits idle.
                await self._work.wait()
                continue
            await self._admit()
            await self._step_all()
            if self._stream_publishable():
                await self.publish()
            await asyncio.sleep(0)

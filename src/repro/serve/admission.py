"""Admission control and per-tenant bandwidth budgets.

The service protects its standing sites with two gates:

* **Concurrency** — at most :attr:`AdmissionPolicy.max_inflight`
  sessions run at once; up to :attr:`AdmissionPolicy.max_queued` more
  wait in FIFO order.  Beyond that, ``submit`` either blocks (the
  closed-loop client shape) or raises :class:`AdmissionRejected` (the
  open-loop / load-shedding shape).
* **Bandwidth** — every session bills the tuples its query transmits
  (the paper's §3.2 cost metric, read off the session's
  :class:`~repro.net.stats.NetworkStats`) against its tenant's account
  in a :class:`TenantLedger`.  A tenant over budget has its running
  sessions aborted at the next step boundary and its new submissions
  rejected until the budget is raised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

__all__ = ["AdmissionPolicy", "AdmissionRejected", "TenantLedger"]


class AdmissionRejected(RuntimeError):
    """The service declined to enqueue a query."""


@dataclass(frozen=True)
class AdmissionPolicy:
    """Concurrency limits for one service instance.

    ``max_subscriptions`` caps *standing* (continuous) queries held
    open at once — unlike one-shot queries they never finish on their
    own, so there is no queue behind the cap: the ``subscribe`` call
    is rejected outright.
    """

    max_inflight: int = 8
    max_queued: int = 64
    max_subscriptions: int = 32

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be positive, got {self.max_inflight!r}"
            )
        if self.max_queued < 0:
            raise ValueError(
                f"max_queued must be non-negative, got {self.max_queued!r}"
            )
        if self.max_subscriptions < 0:
            raise ValueError(
                f"max_subscriptions must be non-negative, got "
                f"{self.max_subscriptions!r}"
            )


class TenantLedger:
    """Per-tenant accounts of transmitted tuples against budgets.

    A tenant absent from ``budgets`` is unmetered (infinite budget);
    the ``default`` tenant is unmetered unless listed explicitly.
    """

    def __init__(self, budgets: Optional[Mapping[str, float]] = None) -> None:
        self._budgets: Dict[str, float] = dict(budgets or {})
        self.spent: Dict[str, float] = {}

    def budget(self, tenant: str) -> Optional[float]:
        return self._budgets.get(tenant)

    def charge(self, tenant: str, tuples: float) -> bool:
        """Bill ``tuples`` to ``tenant``; False once the account is over.

        The charge always lands (traffic already happened — the ledger
        records reality, it does not gate it); the return value tells
        the service whether the tenant may keep going.
        """
        if tuples:
            self.spent[tenant] = self.spent.get(tenant, 0.0) + tuples
        return self.within_budget(tenant)

    def within_budget(self, tenant: str) -> bool:
        budget = self._budgets.get(tenant)
        if budget is None:
            return True
        return self.spent.get(tenant, 0.0) < budget

    def remaining(self, tenant: str) -> Optional[float]:
        budget = self._budgets.get(tenant)
        if budget is None:
            return None
        return max(0.0, budget - self.spent.get(tenant, 0.0))

    def set_budget(self, tenant: str, budget: Optional[float]) -> None:
        """Raise, lower, or lift (None) one tenant's budget."""
        if budget is None:
            self._budgets.pop(tenant, None)
        else:
            self._budgets[tenant] = budget

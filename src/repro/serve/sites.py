"""Shared site state: standing partitions serving many queries at once.

A solo :func:`~repro.distributed.query.distributed_skyline` call builds
fresh :class:`~repro.distributed.site.LocalSite`\\ s, runs one query, and
throws everything away.  A service cannot: the partitions, PR-trees,
and local skylines are the expensive standing state, while each query
only needs its own *candidate queue* over them.

* :class:`SharedSiteHost` owns one partition and hands out per-session
  :meth:`~repro.distributed.site.LocalSite.fork` views.  Templates are
  cached per :class:`~repro.core.dominance.Preference` (dominance
  direction/subspace changes the index and the local skyline), each
  with the shared ``prepare`` memo enabled — so N concurrent sessions
  at the same threshold cost one local-skyline computation, not N.
* :class:`StandingReplicaBook` plays the same trick for replication:
  instead of re-shipping every partition to its buddies per query, a
  session's :class:`~repro.replica.manager.ReplicaManager` is injected
  with pre-provisioned replica forks.  Placement and replica contents
  are bit-identical to solo provisioning (a solo replica is built from
  ``primary.ship_all()`` — the same tuples, in the same order, as the
  host template), so query-visible accounting does not change: solo
  provisioning bills the manager's *standing* ledger, never the query.

Hosts serve reads.  §5.4 maintenance must be applied to the templates
(which clears their shared skyline caches) between queries, never to a
session fork.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..core.dominance import Preference
from ..core.tuples import UncertainTuple
from ..distributed.site import LocalSite, SiteConfig
from ..net.transport import SiteEndpoint
from ..replica.manager import ReplicaManager

if TYPE_CHECKING:
    from ..distributed.workers import TableWorkerPool

__all__ = ["SharedSiteHost", "StandingReplicaBook"]


class SharedSiteHost:
    """One standing partition D_i; a fork factory for sessions."""

    def __init__(
        self,
        site_id: int,
        partition: Sequence[UncertainTuple],
        site_config: Optional[SiteConfig] = None,
    ) -> None:
        self.site_id = site_id
        self._partition = list(partition)
        self.site_config = site_config
        self._templates: Dict[Optional[Preference], LocalSite] = {}
        #: Observability: forks handed out and template (index + cache)
        #: builds actually paid.
        self.forks_served = 0

    def __len__(self) -> int:
        return len(self._partition)

    @property
    def templates_built(self) -> int:
        return len(self._templates)

    def template(self, preference: Optional[Preference] = None) -> LocalSite:
        """The standing site for one dominance preference (built once).

        Bit-identical to ``LocalSite(site_id, partition, preference,
        config)`` — the constructor a solo run uses — plus the shared
        skyline memo, which never changes an answer, only skips
        recomputation.
        """
        site = self._templates.get(preference)
        if site is None:
            site = LocalSite(
                self.site_id,
                self._partition,
                preference=preference,
                config=self.site_config,
            )
            site.enable_skyline_cache()
            self._templates[preference] = site
        return site

    def view(self, preference: Optional[Preference] = None) -> LocalSite:
        """A fresh per-session fork over the standing template."""
        self.forks_served += 1
        return self.template(preference).fork()

    def prewarm_tables(
        self,
        preference: Optional[Preference] = None,
        pool: Optional["TableWorkerPool"] = None,
    ) -> None:
        """Build the template's all-probabilities table ahead of traffic.

        Meaningful only when the host's ``site_config`` opts into
        ``all_probs_table``; a no-op otherwise.  With a ``pool`` the
        product pass runs in a worker process (bit-identical result).
        Every subsequent :meth:`view` fork shares the table zero-copy.
        """
        site = self.template(preference)
        if site.config.all_probs_table:
            site.build_all_probs_table(pool)

    async def prewarm_tables_async(
        self,
        pool: "TableWorkerPool",
        preference: Optional[Preference] = None,
    ) -> None:
        """Worker-process prewarm that never blocks the serving loop."""
        site = self.template(preference)
        if site.config.all_probs_table:
            await site.build_all_probs_table_async(pool)

    def apply_insert(self, t: UncertainTuple) -> None:
        """§5.4 insert against every standing template (cache-clearing)."""
        self._partition.append(t)
        for site in self._templates.values():
            site.insert_tuple(t)

    def apply_delete(self, key: int) -> None:
        """§5.4 delete against every standing template (cache-clearing)."""
        self._partition = [t for t in self._partition if t.key != key]
        for site in self._templates.values():
            site.delete_tuple(key)


class StandingReplicaBook:
    """Pre-provisioned replicas, reused across every session's manager.

    A solo replicated run ships each partition to its buddies once per
    query.  The book amortizes that: a session gets a normal
    :class:`ReplicaManager` (same placement seed, so the same buddy
    assignment and the same ``replica-i@site-j`` wire names) whose
    replica set is *injected* as forks of the standing host templates —
    already provisioned, nothing to ship.  The query-side books cannot
    tell the difference, because solo provisioning happens before
    :meth:`~repro.replica.manager.ReplicaManager.bind_stats` re-points
    billing at the query.
    """

    def __init__(self, hosts: Sequence[SharedSiteHost], seed: int = 0) -> None:
        self._hosts = {host.site_id: host for host in hosts}
        self.seed = seed
        self.managers_issued = 0

    def manager_for(
        self,
        session_sites: Sequence[SiteEndpoint],
        replication_factor: int,
        preference: Optional[Preference] = None,
    ) -> ReplicaManager:
        """A per-session manager over pre-provisioned replica forks."""
        site_config = next(iter(self._hosts.values())).site_config
        manager = ReplicaManager(
            session_sites,
            replication_factor,
            preference=preference,
            site_config=site_config,
            seed=self.seed,
        )
        replicas: Dict[int, List[Tuple[int, LocalSite]]] = {}
        for sid in sorted(manager.placement):
            template = self._hosts[sid].template(preference)
            replicas[sid] = [
                (buddy, template.fork()) for buddy in manager.placement[sid]
            ]
        manager._replicas = replicas
        manager._provisioned = True
        self.managers_issued += 1
        return manager

"""Long-lived subscription sessions: standing queries inside the service.

A :class:`SubscriptionSession` is the continuous counterpart of a
:class:`~repro.serve.session.QuerySession`: where a query session steps
a coordinator until one answer is done, a subscription session stays
registered on the service's :class:`~repro.stream.coordinator.ContinuousCoordinator`
indefinitely and receives the ordered
:class:`~repro.stream.deltas.ResultDelta` batches each published epoch
produces for its query.

Fan-out is asyncio-native: the service's publish step enqueues each
batch on the session's private :class:`asyncio.Queue`, so any number of
subscribers consume at their own pace (``async for batch in
session.batches()``) without blocking the scheduler — the same
one-loop, isolated-state discipline the one-shot sessions follow.

Delta traffic is billed like query traffic: every published epoch's
transmitted tuples are split equally across the active subscriptions
and charged to their tenants' :class:`~repro.serve.admission.TenantLedger`
accounts; a tenant over budget has its subscriptions cancelled at the
next publish boundary, exactly as a one-shot session is aborted at its
next step.
"""

from __future__ import annotations

import asyncio
import enum
from typing import AsyncIterator, List, Optional

from ..stream.deltas import ResultDelta, StandingQuery

__all__ = ["SubscriptionState", "SubscriptionSession"]


class SubscriptionState(enum.Enum):
    ACTIVE = "active"
    CANCELLED = "cancelled"


class SubscriptionSession:
    """One standing query held open by a client.

    Created by :meth:`~repro.serve.service.SkylineService.subscribe`;
    not constructed directly.  ``query_id`` is the id under which the
    query is registered on the stream coordinator — deltas carry it.
    """

    def __init__(self, session_id: int, query: StandingQuery, query_id: int) -> None:
        self.session_id = session_id
        self.query = query
        self.query_id = query_id
        self.state = SubscriptionState.ACTIVE
        self.abort_reason: Optional[str] = None
        #: Tuples of delta traffic billed to this subscription's tenant.
        self.billed_tuples = 0.0
        #: Total deltas delivered over the session's lifetime.
        self.notified = 0
        self._queue: "asyncio.Queue[Optional[List[ResultDelta]]]" = asyncio.Queue()

    @property
    def active(self) -> bool:
        return self.state is SubscriptionState.ACTIVE

    # ------------------------------------------------------------------
    # the service side
    # ------------------------------------------------------------------

    def _deliver(self, batch: List[ResultDelta]) -> None:
        self.notified += len(batch)
        self._queue.put_nowait(list(batch))

    def _cancel(self, reason: Optional[str]) -> None:
        if self.state is SubscriptionState.CANCELLED:
            return
        self.state = SubscriptionState.CANCELLED
        self.abort_reason = reason
        # The end-of-stream sentinel: consumers drain queued batches
        # first, then see the close.
        self._queue.put_nowait(None)

    # ------------------------------------------------------------------
    # the client side
    # ------------------------------------------------------------------

    async def next_batch(self) -> Optional[List[ResultDelta]]:
        """Await one epoch's delta batch; ``None`` once cancelled.

        Pending batches queued before cancellation are still delivered,
        in order — the close lands after them.
        """
        if self.state is SubscriptionState.CANCELLED and self._queue.empty():
            return None
        batch = await self._queue.get()
        if batch is None:
            # Keep the sentinel in place for any other waiter.
            self._queue.put_nowait(None)
            return None
        return batch

    async def batches(self) -> AsyncIterator[List[ResultDelta]]:
        """Iterate delta batches until the subscription closes."""
        while True:
            batch = await self.next_batch()
            if batch is None:
                return
            yield batch

"""Per-query session state: one progressive query inside the service.

A :class:`QuerySession` owns everything a single query mutates — its
coordinator (heap / residents, :class:`~repro.fault.coverage.CoverageTracker`,
:class:`~repro.distributed.coordinator.TopKBuffer`, per-query
:class:`~repro.net.stats.NetworkStats`) plus its per-session site forks
or dialed remote proxies — and exposes the query as a sequence of
awaitable :meth:`step` calls, one per coordinator iteration.  Steps
drive :meth:`~repro.distributed.coordinator.Coordinator.asteps`, so a
session blocked on a socket reply parks on the event loop instead of
the scheduler thread: one session's I/O wait overlaps another's
compute.  Because no mutable state is shared between sessions, the
interleaving order cannot change any session's answer, messages, or
emission order (the exactness suites pin this, sync and async alike).
"""

from __future__ import annotations

import asyncio
import enum
import inspect
import time
from dataclasses import dataclass
from typing import Any, AsyncGenerator, List, Optional

from ..core.dominance import Preference
from ..distributed.coordinator import Coordinator
from ..distributed.edsud import EDSUDConfig
from ..distributed.runner import RunResult
from ..fault.retry import RetryPolicy
from ..fault.schedule import FaultSchedule

__all__ = ["QuerySpec", "SessionState", "QuerySession"]


@dataclass(frozen=True)
class QuerySpec:
    """Everything that defines one query, independent of the cluster.

    The knobs mirror :func:`~repro.distributed.query.distributed_skyline`
    so a spec served concurrently is comparable, bit for bit, with the
    same spec run solo.  ``tenant`` names the bandwidth-budget account
    the session bills against.
    """

    threshold: float
    algorithm: str = "dsud"
    preference: Optional[Preference] = None
    limit: Optional[int] = None
    batch_size: int = 1
    replication_factor: int = 1
    fault_schedule: Optional[FaultSchedule] = None
    retry_policy: Optional[RetryPolicy] = None
    edsud_config: Optional[EDSUDConfig] = None
    tenant: str = "default"


class SessionState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    FINISHED = "finished"
    FAILED = "failed"
    ABORTED = "aborted"


class QuerySession:
    """One in-flight query: a coordinator driven step by step."""

    def __init__(
        self, query_id: int, spec: QuerySpec, coordinator: Coordinator
    ) -> None:
        self.query_id = query_id
        self.spec = spec
        self.coordinator = coordinator
        self.state = SessionState.QUEUED
        self.result: Optional[RunResult] = None
        self.error: Optional[BaseException] = None
        self.abort_reason: Optional[str] = None
        #: Wall-clock marks (``perf_counter`` seconds) for the latency
        #: percentiles the bench reports.
        self.submitted_at = time.perf_counter()
        self.started_at: Optional[float] = None
        self.first_result_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: Tuples already charged to the tenant ledger (the service
        #: bills the delta after every step).
        self.billed_tuples = 0
        self.steps_taken = 0
        #: Remote endpoints dialed for this session alone; released via
        #: :meth:`release_endpoints` once the session is terminal.
        self.owned_endpoints: List[Any] = []
        self._steps: Optional[AsyncGenerator[None, None]] = None
        #: Bandwidth book snapshot taken when the session goes terminal.
        #: Once set, :attr:`transmitted_tuples` stops tracking the live
        #: coordinator stats, so nothing the transport finishes after
        #: abort can ever reach the tenant ledger.
        self._frozen_tuples: Optional[int] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.state in (
            SessionState.FINISHED,
            SessionState.FAILED,
            SessionState.ABORTED,
        )

    @property
    def transmitted_tuples(self) -> int:
        if self._frozen_tuples is not None:
            return self._frozen_tuples
        return int(self.coordinator.stats.tuples_transmitted)

    def _freeze_tuples(self) -> None:
        if self._frozen_tuples is None:
            self._frozen_tuples = int(self.coordinator.stats.tuples_transmitted)

    def start(self) -> None:
        if self.state is not SessionState.QUEUED:
            raise RuntimeError(f"session {self.query_id} already {self.state.value}")
        self.state = SessionState.RUNNING
        self.started_at = time.perf_counter()
        self._steps = self.coordinator.asteps()

    async def step(self) -> bool:
        """Advance one coordinator iteration; True when the query ended.

        Awaits the coordinator's async iterator, so while this session
        waits on a site socket the event loop runs its siblings.
        ``steps_taken`` counts *completed* iterations only: the counter
        moves after the iterator yields, never on the probe that merely
        discovers exhaustion and never on a step that raises.  A fault
        that escapes the coordinator (anything beyond the transport
        faults it degrades through) fails the session rather than the
        service.
        """
        if self.state is not SessionState.RUNNING or self._steps is None:
            return True
        try:
            await self._steps.__anext__()
            finished = False
            self.steps_taken += 1
        except StopAsyncIteration:
            finished = True
        except asyncio.CancelledError:
            # Cancellation is the caller's verdict, not a site fault:
            # the generator's ``finally`` has already detached the pool
            # and closed the script, so re-raise with books consistent.
            raise
        except BaseException as exc:
            self.error = exc
            self.state = SessionState.FAILED
            self.finished_at = time.perf_counter()
            self._steps = None
            self._freeze_tuples()
            return True
        if self.first_result_at is None and self.coordinator.results:
            self.first_result_at = time.perf_counter()
        if finished:
            self.result = self.coordinator.finish()
            if self.first_result_at is None and self.coordinator.results:
                self.first_result_at = time.perf_counter()
            self.state = SessionState.FINISHED
            self.finished_at = time.perf_counter()
            self._steps = None
            self._freeze_tuples()
        return finished

    async def abort(self, reason: str) -> None:
        """Stop a session early (admission kill, budget exhaustion).

        Runs on the service's event loop, so the coordinator's pool is
        released without joining its threads: in-flight broadcasts
        drain in the background instead of stalling every other
        session.  The bandwidth book is frozen *before* this returns —
        whatever those draining broadcasts still add to the
        coordinator's ``tuples_transmitted`` can never be billed to the
        tenant, because :attr:`transmitted_tuples` now reads the frozen
        snapshot.
        """
        if self.done:
            return
        self.coordinator.close_nowait()
        steps, self._steps = self._steps, None
        if steps is not None:
            await steps.aclose()
        self.abort_reason = reason
        self.state = SessionState.ABORTED
        self.finished_at = time.perf_counter()
        self._freeze_tuples()

    async def release_endpoints(self) -> None:
        """Close remote endpoints this session dialed for itself.

        Idempotent; endpoints whose ``close`` is a coroutine (the async
        TCP proxies) are awaited so the sockets are really gone before
        the service reports the session finished.
        """
        endpoints, self.owned_endpoints = self.owned_endpoints, []
        for endpoint in endpoints:
            closer = getattr(endpoint, "close", None)
            if closer is None:
                continue
            try:
                outcome = closer()
                if inspect.isawaitable(outcome):
                    await outcome
            except (ConnectionError, OSError):
                continue

    # ------------------------------------------------------------------
    # bench-facing latency marks
    # ------------------------------------------------------------------

    @property
    def latency(self) -> Optional[float]:
        """Submission → completion, in seconds (None while in flight)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    @property
    def first_result_latency(self) -> Optional[float]:
        """Submission → first progressive result, in seconds."""
        if self.first_result_at is None:
            return None
        return self.first_result_at - self.submitted_at

    def __repr__(self) -> str:
        return (
            f"QuerySession(id={self.query_id}, q={self.spec.threshold}, "
            f"algorithm={self.spec.algorithm!r}, state={self.state.value})"
        )

"""Per-query session state: one progressive query inside the service.

A :class:`QuerySession` owns everything a single query mutates — its
coordinator (heap / residents, :class:`~repro.fault.coverage.CoverageTracker`,
:class:`~repro.distributed.coordinator.TopKBuffer`, per-query
:class:`~repro.net.stats.NetworkStats`) plus its per-session site forks
— and exposes the query as a sequence of :meth:`step` calls, one per
coordinator iteration.  The service interleaves sessions by stepping
them in turn; because no mutable state is shared between sessions, the
interleaving order cannot change any session's answer, messages, or
emission order (the exactness suite pins this).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Iterator, Optional

from ..core.dominance import Preference
from ..distributed.coordinator import Coordinator
from ..distributed.edsud import EDSUDConfig
from ..distributed.runner import RunResult
from ..fault.retry import RetryPolicy
from ..fault.schedule import FaultSchedule

__all__ = ["QuerySpec", "SessionState", "QuerySession"]


@dataclass(frozen=True)
class QuerySpec:
    """Everything that defines one query, independent of the cluster.

    The knobs mirror :func:`~repro.distributed.query.distributed_skyline`
    so a spec served concurrently is comparable, bit for bit, with the
    same spec run solo.  ``tenant`` names the bandwidth-budget account
    the session bills against.
    """

    threshold: float
    algorithm: str = "dsud"
    preference: Optional[Preference] = None
    limit: Optional[int] = None
    batch_size: int = 1
    replication_factor: int = 1
    fault_schedule: Optional[FaultSchedule] = None
    retry_policy: Optional[RetryPolicy] = None
    edsud_config: Optional[EDSUDConfig] = None
    tenant: str = "default"


class SessionState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    FINISHED = "finished"
    FAILED = "failed"
    ABORTED = "aborted"


class QuerySession:
    """One in-flight query: a coordinator driven step by step."""

    def __init__(
        self, query_id: int, spec: QuerySpec, coordinator: Coordinator
    ) -> None:
        self.query_id = query_id
        self.spec = spec
        self.coordinator = coordinator
        self.state = SessionState.QUEUED
        self.result: Optional[RunResult] = None
        self.error: Optional[BaseException] = None
        self.abort_reason: Optional[str] = None
        #: Wall-clock marks (``perf_counter`` seconds) for the latency
        #: percentiles the bench reports.
        self.submitted_at = time.perf_counter()
        self.started_at: Optional[float] = None
        self.first_result_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: Tuples already charged to the tenant ledger (the service
        #: bills the delta after every step).
        self.billed_tuples = 0
        self.steps_taken = 0
        self._steps: Optional[Iterator[None]] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.state in (
            SessionState.FINISHED,
            SessionState.FAILED,
            SessionState.ABORTED,
        )

    @property
    def transmitted_tuples(self) -> int:
        return int(self.coordinator.stats.tuples_transmitted)

    def start(self) -> None:
        if self.state is not SessionState.QUEUED:
            raise RuntimeError(f"session {self.query_id} already {self.state.value}")
        self.state = SessionState.RUNNING
        self.started_at = time.perf_counter()
        self._steps = self.coordinator.steps()

    def step(self) -> bool:
        """Advance one coordinator iteration; True when the query ended.

        A fault that escapes the coordinator (anything beyond the
        transport faults it degrades through) fails the session rather
        than the service.
        """
        if self.state is not SessionState.RUNNING or self._steps is None:
            return True
        self.steps_taken += 1
        try:
            next(self._steps)
            finished = False
        except StopIteration:
            finished = True
        except BaseException as exc:
            self.error = exc
            self.state = SessionState.FAILED
            self.finished_at = time.perf_counter()
            self._steps = None
            return True
        if self.first_result_at is None and self.coordinator.results:
            self.first_result_at = time.perf_counter()
        if finished:
            self.result = self.coordinator.finish()
            if self.first_result_at is None and self.coordinator.results:
                self.first_result_at = time.perf_counter()
            self.state = SessionState.FINISHED
            self.finished_at = time.perf_counter()
            self._steps = None
        return finished

    def abort(self, reason: str) -> None:
        """Stop a session early (admission kill, budget exhaustion).

        Runs on the service's event loop, so the coordinator's pool is
        released without joining its threads: in-flight broadcasts
        drain in the background instead of stalling every other
        session.  The generator's own ``finally: close()`` then no-ops
        (the pool is already detached).
        """
        if self.done:
            return
        self.coordinator.close_nowait()
        if self._steps is not None:
            self._steps.close()
            self._steps = None
        self.abort_reason = reason
        self.state = SessionState.ABORTED
        self.finished_at = time.perf_counter()

    # ------------------------------------------------------------------
    # bench-facing latency marks
    # ------------------------------------------------------------------

    @property
    def latency(self) -> Optional[float]:
        """Submission → completion, in seconds (None while in flight)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    @property
    def first_result_latency(self) -> Optional[float]:
        """Submission → first progressive result, in seconds."""
        if self.first_result_at is None:
            return None
        return self.first_result_at - self.submitted_at

    def __repr__(self) -> str:
        return (
            f"QuerySession(id={self.query_id}, q={self.spec.threshold}, "
            f"algorithm={self.spec.algorithm!r}, state={self.state.value})"
        )

"""Seed-deterministic buddy placement for partition replicas.

Placement answers one question: *which hosts keep a copy of partition
``D_i``?*  The answer must be computable by anyone — coordinator,
bench, test — from public inputs alone, with no coordination round and
no stored assignment table, so it is a pure function of the sorted
site ids, the replication factor, and a seed.

The scheme is the classic successor ring: the sorted ids form a ring,
and site ``i``'s ``replication_factor - 1`` replicas land on ring
successors starting at a seed-rotated offset.  Offsets are always in
``1 … m-1``, so a replica can never land on its own primary.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

__all__ = ["assign_buddies"]


def assign_buddies(
    site_ids: Iterable[int], replication_factor: int, seed: int = 0
) -> Dict[int, List[int]]:
    """Map each site id to the buddy hosts keeping its replicas.

    Deterministic in ``(site_ids, replication_factor, seed)``; the seed
    only rotates which successor the buddy chain starts at, so reseeding
    re-balances placement without changing its shape.  Raises when the
    factor asks for more copies than there are distinct hosts — a
    replica is never colocated with its primary.
    """
    ids = sorted(set(site_ids))
    m = len(ids)
    if replication_factor < 1:
        raise ValueError(
            f"replication_factor must be >= 1, got {replication_factor!r}"
        )
    if replication_factor > m:
        raise ValueError(
            f"replication_factor={replication_factor} needs at least "
            f"{replication_factor} sites (got {m}): a replica never "
            "colocates with its primary"
        )
    if replication_factor == 1:
        return {sid: [] for sid in ids}
    rotation = seed % (m - 1)
    out: Dict[int, List[int]] = {}
    for idx, sid in enumerate(ids):
        offsets = [
            ((rotation + k) % (m - 1)) + 1 for k in range(replication_factor - 1)
        ]
        out[sid] = [ids[(idx + off) % m] for off in offsets]
    return out

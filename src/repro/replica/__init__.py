"""Partition replication: buddy placement, sync, and failover supply.

The fault subsystem (:mod:`repro.fault`) keeps a query *sound* when a
site dies — Corollary-1 upper bounds, degraded supersets — but Lemma 1
needs every site's Eq.-9 factor to stay *exact*.  This package closes
that gap: every partition ``D_i`` is copied onto
``replication_factor - 1`` buddy hosts chosen by a seed-deterministic
ring placement (:mod:`~repro.replica.placement`), kept consistent by
write-forwarding plus anti-entropy digest exchange
(:class:`~repro.replica.manager.ReplicaManager`), and served to the
coordinator as a drop-in replacement endpoint when the primary goes
DOWN — so a query under chaos returns the fault-free answer instead of
a degraded one, up to ``replication_factor - 1`` failures per
partition.
"""

from .manager import ReplicaManager
from .placement import assign_buddies

__all__ = ["ReplicaManager", "assign_buddies"]

"""The :class:`ReplicaManager`: provisioning, write-forwarding, anti-entropy.

One manager owns every replica in the cluster.  It provisions a
:class:`~repro.distributed.site.LocalSite` copy of each partition on
its buddy hosts (placement per :mod:`~repro.replica.placement`), keeps
the copies consistent with §5.4 maintenance through write-forwarding
(:meth:`~ReplicaManager.forward_insert` / :meth:`~ReplicaManager.forward_delete`)
plus a periodic anti-entropy digest exchange
(:meth:`~ReplicaManager.anti_entropy_round`), and hands the coordinator
a drop-in replacement endpoint (:meth:`~ReplicaManager.replica_for`)
when a primary goes DOWN.

Accounting: every replica-path message is billed to the bound
:class:`~repro.net.stats.NetworkStats` (skylint SKY103) — provisioning
and repairs as tuple-bearing ``REPLICA_SYNC``, digest exchanges as
zero-tuple ``DIGEST``.  The manager starts with its own standing book
(provisioning is a data-placement cost amortised across queries, not a
per-query one); a coordinator re-points billing at its per-query book
via :meth:`~ReplicaManager.bind_stats`, so failover-time sync traffic
lands on the query it serves.

Failure coupling is intentionally not modelled: a replica is an
in-process ``LocalSite`` unaffected by the fault schedule gating its
logical primary.  The model is "the buddy host survives the primary's
crash" — the assumption the related distributed-skyline literature
makes when treating site data as recoverable from peers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.dominance import Preference
from ..core.tuples import UncertainTuple
from ..distributed.site import LocalSite, SiteConfig
from ..net.message import Message, MessageKind
from ..net.stats import NetworkStats
from ..net.transport import SiteEndpoint
from .placement import assign_buddies

__all__ = ["ReplicaManager"]


class ReplicaManager:
    """Owns the replica set of one cluster and its sync protocol."""

    def __init__(
        self,
        sites: Sequence[SiteEndpoint],
        replication_factor: int,
        preference: Optional[Preference] = None,
        site_config: Optional[SiteConfig] = None,
        seed: int = 0,
    ) -> None:
        self._primaries: Dict[int, SiteEndpoint] = {s.site_id: s for s in sites}
        self.replication_factor = replication_factor
        self.preference = preference
        self.site_config = site_config
        self.placement = assign_buddies(
            self._primaries, replication_factor, seed=seed
        )
        #: logical site id → [(buddy host id, replica LocalSite)]
        self._replicas: Dict[int, List[Tuple[int, LocalSite]]] = {}
        #: The active billing book.  Starts as the manager's standing
        #: ledger; a coordinator swaps in its per-query stats via
        #: :meth:`bind_stats`.
        self.stats = NetworkStats()
        self._provisioned = False

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def bind_stats(self, stats: NetworkStats) -> None:
        """Re-point replica-traffic billing (e.g. at a query's books)."""
        self.stats = stats

    def _account(
        self, kind: MessageKind, sender: str, receiver: str, tuples: Optional[int] = None
    ) -> None:
        self.stats.record(
            Message.bearing(kind, sender, receiver, payload=None, tuple_count=tuples)
        )

    @staticmethod
    def _replica_name(site_id: int, host: int) -> str:
        return f"replica-{site_id}@site-{host}"

    # ------------------------------------------------------------------
    # provisioning
    # ------------------------------------------------------------------

    @property
    def has_replicas(self) -> bool:
        return self.replication_factor > 1

    def ensure_provisioned(self) -> None:
        """Copy every partition onto its buddies; idempotent.

        Provisioning rides ``ship_all``: the primary surrenders its
        partition once per buddy, billed as one ``REPLICA_SYNC``
        bearing ``|D_i|`` tuples — the §3.2 cost of placing a copy.
        """
        if self._provisioned or not self.has_replicas:
            self._provisioned = True
            return
        for sid in sorted(self._primaries):
            primary = self._primaries[sid]
            data = list(primary.ship_all())
            pairs: List[Tuple[int, LocalSite]] = []
            for host in self.placement[sid]:
                self._account(
                    MessageKind.REPLICA_SYNC,
                    f"site-{sid}",
                    self._replica_name(sid, host),
                    tuples=len(data),
                )
                replica = LocalSite(
                    site_id=sid,
                    database=data,
                    preference=self.preference,
                    config=self.site_config,
                )
                pairs.append((host, replica))
            self._replicas[sid] = pairs
            self.stats.record_round(tuples_in_round=len(data) * len(pairs))
        self._provisioned = True

    def replica_for(self, site_id: int) -> Optional[LocalSite]:
        """A live replica endpoint able to serve ``site_id``, if any.

        The replica is a full :class:`LocalSite` constructed with the
        primary's ``site_id``, so quaternions it surrenders carry the
        correct origin and the coordinator can swap it in untouched.
        """
        self.ensure_provisioned()
        pairs = self._replicas.get(site_id, [])
        return pairs[0][1] if pairs else None

    # ------------------------------------------------------------------
    # write-forwarding (§5.4 maintenance stays replica-consistent)
    # ------------------------------------------------------------------

    def forward_insert(self, site_id: int, t: UncertainTuple) -> None:
        """Apply one §5.4 insert to every replica of ``site_id``.

        One tuple-bearing ``REPLICA_SYNC`` per copy — the forwarded
        write is real wide-area traffic.  Application is convergent
        (upsert): lazy provisioning may have snapshotted the primary
        *after* the write it forwards, in which case the copy already
        holds the tuple and the message is a no-op on arrival.
        """
        self.ensure_provisioned()
        for host, replica in self._replicas.get(site_id, []):
            self._account(
                MessageKind.REPLICA_SYNC,
                f"site-{site_id}",
                self._replica_name(site_id, host),
                tuples=1,
            )
            if replica.database.get(t.key) == t:
                continue
            if t.key in replica.database:
                replica.delete_tuple(t.key)
            replica.insert_tuple(t)

    def forward_delete(self, site_id: int, key: int) -> None:
        """Apply one §5.4 delete to every replica of ``site_id``.

        Key-only, so zero tuples under the §3.2 metric — but still a
        billed ``REPLICA_SYNC`` message: a failover must never
        resurrect a deleted tuple.  Convergent like
        :meth:`forward_insert`: deleting an already-absent key is a
        no-op on arrival.
        """
        self.ensure_provisioned()
        for host, replica in self._replicas.get(site_id, []):
            self._account(
                MessageKind.REPLICA_SYNC,
                f"site-{site_id}",
                self._replica_name(site_id, host),
                tuples=0,
            )
            if key in replica.database:
                replica.delete_tuple(key)

    # ------------------------------------------------------------------
    # anti-entropy
    # ------------------------------------------------------------------

    def anti_entropy_round(self) -> int:
        """One digest exchange per (primary, replica) pair; repair drift.

        Each pair costs two zero-tuple ``DIGEST`` messages (the
        partition fingerprints cross); only a mismatch triggers a
        tuple-bearing repair shipment.  Returns the number of replicas
        repaired — zero on a cluster where every write was forwarded.
        """
        self.ensure_provisioned()
        repaired = 0
        for sid in sorted(self._replicas):
            primary = self._primaries[sid]
            want = primary.partition_digest()
            for host, replica in self._replicas[sid]:
                name = self._replica_name(sid, host)
                self._account(MessageKind.DIGEST, f"site-{sid}", name)
                self._account(MessageKind.DIGEST, name, f"site-{sid}")
                if replica.partition_digest() == want:
                    continue
                self._repair(primary, replica, f"site-{sid}", name)
                repaired += 1
        if self._replicas:
            self.stats.record_round()
        return repaired

    def resync_primary(self, site_id: int) -> bool:
        """Converge a recovered primary onto its serving replica's data.

        The failback prelude: before the coordinator re-targets the
        primary, its partition must match the copy that served in its
        absence (writes may have been forwarded while it was DOWN).
        Digest exchange first; only a mismatch ships tuples.  Returns
        True when the partitions agree afterwards.
        """
        self.ensure_provisioned()
        pairs = self._replicas.get(site_id, [])
        if not pairs:
            return True
        host, replica = pairs[0]
        primary = self._primaries[site_id]
        pname = f"site-{site_id}"
        rname = self._replica_name(site_id, host)
        self._account(MessageKind.DIGEST, pname, rname)
        self._account(MessageKind.DIGEST, rname, pname)
        if primary.partition_digest() != replica.partition_digest():
            self._repair(replica, primary, rname, pname)
        return primary.partition_digest() == replica.partition_digest()

    def _repair(
        self,
        source: SiteEndpoint,
        target: SiteEndpoint,
        source_name: str,
        target_name: str,
    ) -> int:
        """Ship the diff that converges ``target`` onto ``source``.

        Deletions travel as keys (zero tuples); inserted or changed
        tuples bear their §3.2 cost in one ``REPLICA_SYNC``.  Returns
        the number of tuples shipped.
        """
        want = {t.key: t for t in source.ship_all()}
        have = {t.key: t for t in target.ship_all()}
        for key in sorted(set(have) - set(want)):
            target.delete_tuple(key)
        shipped = 0
        for key in sorted(want):
            t = want[key]
            old = have.get(key)
            if old == t:
                continue
            if old is not None:
                target.delete_tuple(key)
            target.insert_tuple(t)
            shipped += 1
        self._account(
            MessageKind.REPLICA_SYNC, source_name, target_name, tuples=shipped
        )
        self.stats.record_round(tuples_in_round=shipped)
        return shipped

"""The coordinator↔site endpoint contract and instrumentation wrappers.

The coordinator drives sites through a narrow RPC surface —
:class:`SiteEndpoint` — with one method per protocol message.  Three
implementations exist:

* :class:`~repro.distributed.site.LocalSite` — in-process, the default
  for experiments (bandwidth accounting is exact regardless of
  transport because the coordinator records protocol messages itself).
* :class:`~repro.net.sockets.RemoteSiteProxy` — the same calls carried
  over real TCP to a site server, for end-to-end realism.
* :class:`RecordingEndpoint` (here) — a decorator that logs every call
  for tests asserting protocol behaviour, e.g. that feedback is never
  delivered to its origin site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from ..core.tuples import UncertainTuple
from .message import Quaternion

if TYPE_CHECKING:  # typing only — net must not import distributed at runtime
    from ..distributed.site import BatchProbeReply, ProbeReply

__all__ = ["SiteEndpoint", "RecordingEndpoint", "CallRecord"]


@runtime_checkable
class SiteEndpoint(Protocol):
    """What the coordinator requires of a participant."""

    site_id: int

    def prepare(self, threshold: float) -> int:
        """Local computing phase; returns |SKY(D_i)|."""

    def pop_representative(self) -> Optional[Quaternion]:
        """To-Server phase; None once exhausted."""

    def probe_and_prune(self, t: UncertainTuple) -> "ProbeReply":
        """Server-Delivery + Local-Pruning; returns a ProbeReply."""

    def queue_size(self) -> int:
        """Remaining local candidates (control information)."""


@dataclass(frozen=True)
class CallRecord:
    """One observed RPC."""

    site_id: int
    method: str
    args: Tuple[Any, ...]
    result: Any


class RecordingEndpoint:
    """Transparent endpoint decorator that journals every call."""

    def __init__(self, inner: SiteEndpoint, log: Optional[List[CallRecord]] = None) -> None:
        self.inner = inner
        self.site_id = inner.site_id
        self.log: List[CallRecord] = log if log is not None else []

    def _record(self, method: str, args: Tuple[Any, ...], result: Any) -> Any:
        self.log.append(CallRecord(self.site_id, method, args, result))
        return result

    def prepare(self, threshold: float) -> int:
        return self._record("prepare", (threshold,), self.inner.prepare(threshold))

    def pop_representative(self) -> Optional[Quaternion]:
        return self._record("pop_representative", (), self.inner.pop_representative())

    def probe_and_prune(self, t: UncertainTuple) -> "ProbeReply":
        return self._record("probe_and_prune", (t,), self.inner.probe_and_prune(t))

    def probe_and_prune_batch(self, ts: Sequence[UncertainTuple]) -> "BatchProbeReply":
        # Explicit (not via __getattr__) so batched rounds appear in
        # the journal under their own method name.
        return self._record(
            "probe_and_prune_batch", (tuple(ts),), self.inner.probe_and_prune_batch(ts)
        )

    def queue_size(self) -> int:
        return self._record("queue_size", (), self.inner.queue_size())

    def __getattr__(self, name: str) -> Any:
        # Expose everything else (update hooks, replica access, …)
        # untouched so the wrapper stays drop-in for LocalSite users.
        return getattr(self.inner, name)

"""Network substrate: protocol messages, bandwidth/latency accounting,
the coordinator↔site endpoint contract, and real TCP transports
(threaded sockets and asyncio streams over one wire format)."""

from .aio import AsyncLocalEndpoint, AsyncRemoteSiteProxy, AsyncSiteEndpoint
from .message import Message, MessageKind, Quaternion, decode_tuple, encode_tuple
from .stats import LatencyModel, NetworkStats, ProgressEvent, ProgressLog
from .trace import ProtocolTracer, TraceRecord, load_trace, summarize_trace
from .transport import CallRecord, RecordingEndpoint, SiteEndpoint

__all__ = [
    "AsyncLocalEndpoint",
    "AsyncRemoteSiteProxy",
    "AsyncSiteEndpoint",
    "Message",
    "MessageKind",
    "Quaternion",
    "encode_tuple",
    "decode_tuple",
    "LatencyModel",
    "NetworkStats",
    "ProgressEvent",
    "ProgressLog",
    "SiteEndpoint",
    "RecordingEndpoint",
    "CallRecord",
    "ProtocolTracer",
    "TraceRecord",
    "load_trace",
    "summarize_trace",
]

"""Protocol tracing: persistent, analyzable records of a query run.

Debugging a distributed algorithm means asking "what was actually said,
in what order?".  A :class:`ProtocolTracer` wraps any set of site
endpoints, timestamps every RPC, and can dump the conversation as
JSON-lines for offline analysis — the operational sibling of the
in-memory :class:`~repro.net.transport.RecordingEndpoint` the tests
use.  :func:`summarize_trace` turns a trace back into the questions one
actually asks: calls per site, per method, tuples moved, and the
first/last activity of each participant.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Union

from ..core.tuples import UncertainTuple
from .message import Quaternion
from .transport import SiteEndpoint

if TYPE_CHECKING:  # typing only — net must not import distributed at runtime
    from ..distributed.site import ProbeReply

__all__ = ["TraceRecord", "ProtocolTracer", "load_trace", "summarize_trace"]

PathLike = Union[str, Path]


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped RPC."""

    sequence: int
    timestamp: float
    site_id: int
    method: str
    detail: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sequence": self.sequence,
            "timestamp": self.timestamp,
            "site_id": self.site_id,
            "method": self.method,
            "detail": self.detail,
        }


class _TracedEndpoint:
    """One endpoint's tracing shim (shares the tracer's journal)."""

    def __init__(self, inner: SiteEndpoint, tracer: "ProtocolTracer") -> None:
        self._inner = inner
        self._tracer = tracer
        self.site_id = inner.site_id

    def prepare(self, threshold: float) -> int:
        size = self._inner.prepare(threshold)
        self._tracer._record(self.site_id, "prepare",
                             {"threshold": threshold, "local_skyline": size})
        return size

    def pop_representative(self) -> Optional[Quaternion]:
        quaternion = self._inner.pop_representative()
        detail: Dict[str, Any] = {"exhausted": quaternion is None}
        if quaternion is not None:
            detail["key"] = quaternion.key
            detail["local_probability"] = quaternion.local_probability
        self._tracer._record(self.site_id, "pop_representative", detail)
        return quaternion

    def probe_and_prune(self, t: UncertainTuple) -> "ProbeReply":
        reply = self._inner.probe_and_prune(t)
        self._tracer._record(
            self.site_id,
            "probe_and_prune",
            {
                "key": t.key,
                "factor": reply.factor,
                "pruned": reply.pruned,
                "queue_remaining": reply.queue_remaining,
            },
        )
        return reply

    def queue_size(self) -> int:
        size = self._inner.queue_size()
        self._tracer._record(self.site_id, "queue_size", {"size": size})
        return size

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


class ProtocolTracer:
    """Wrap endpoints, journal every call, dump/load as JSONL."""

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []
        self._start = time.perf_counter()

    def wrap(self, sites: Sequence[SiteEndpoint]) -> List[_TracedEndpoint]:
        return [_TracedEndpoint(site, self) for site in sites]

    def _record(self, site_id: int, method: str, detail: Dict[str, Any]) -> None:
        self.records.append(
            TraceRecord(
                sequence=len(self.records),
                timestamp=time.perf_counter() - self._start,
                site_id=site_id,
                method=method,
                detail=detail,
            )
        )

    def save(self, path: PathLike) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            for record in self.records:
                fh.write(json.dumps(record.to_dict()))
                fh.write("\n")

    def __len__(self) -> int:
        return len(self.records)


def load_trace(path: PathLike) -> List[TraceRecord]:
    out: List[TraceRecord] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            out.append(
                TraceRecord(
                    sequence=int(data["sequence"]),
                    timestamp=float(data["timestamp"]),
                    site_id=int(data["site_id"]),
                    method=str(data["method"]),
                    detail=dict(data["detail"]),
                )
            )
    return out


def summarize_trace(records: Sequence[TraceRecord]) -> Dict[str, Any]:
    """Roll a trace up into the usual debugging questions."""
    by_method: Dict[str, int] = {}
    by_site: Dict[int, int] = {}
    pruned = 0
    fetched = 0
    for record in records:
        by_method[record.method] = by_method.get(record.method, 0) + 1
        by_site[record.site_id] = by_site.get(record.site_id, 0) + 1
        if record.method == "probe_and_prune":
            pruned += int(record.detail.get("pruned", 0))
        if record.method == "pop_representative" and not record.detail.get(
            "exhausted", False
        ):
            fetched += 1
    return {
        "calls": len(records),
        "by_method": by_method,
        "by_site": by_site,
        "tuples_fetched": fetched,
        "broadcast_deliveries": by_method.get("probe_and_prune", 0),
        "candidates_pruned_at_sites": pruned,
        "duration": records[-1].timestamp - records[0].timestamp if records else 0.0,
    }

"""The asyncio transport: overlapping site RPCs without threads.

The serving layer (:mod:`repro.serve`) multiplexes many progressive
queries on one event loop, so its coordinator→site RPCs must not block
that loop.  This module provides the async half of the endpoint
contract:

* :class:`AsyncSiteEndpoint` — the awaitable mirror of
  :class:`~repro.net.transport.SiteEndpoint`, one coroutine per
  protocol message.
* :class:`AsyncLocalEndpoint` — adapts any *sync* endpoint (an
  in-process :class:`~repro.distributed.site.LocalSite`, a fork, a
  fault-injecting wrapper) by yielding to the event loop around each
  call, so co-scheduled sessions interleave at RPC granularity even
  when the work itself is in-process.
* :class:`AsyncRemoteSiteProxy` — the asyncio-streams twin of
  :class:`~repro.net.sockets.RemoteSiteProxy`: same 4-byte big-endian
  length-prefixed JSON framing, same timeout → SiteTimeout escalation,
  same never-retry rule for the non-idempotent ``pop_representative``
  — so RPCs to *distinct* sites genuinely overlap in one thread.

Servers are unchanged: an :class:`~repro.net.sockets.SiteServer` hosts
both proxy flavours, because the wire format is identical.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Protocol, Sequence, Tuple

from ..core.tuples import UncertainTuple
from ..fault.errors import SiteTimeout
from .message import Quaternion, decode_tuple, encode_tuple
from .sockets import _LENGTH
from .transport import SiteEndpoint

if TYPE_CHECKING:  # typing only — net must not import distributed at runtime
    from ..distributed.site import BatchProbeReply, ProbeReply

__all__ = [
    "AsyncSiteEndpoint",
    "AsyncLocalEndpoint",
    "AsyncRemoteSiteProxy",
    "connect_async_sites",
]


class AsyncSiteEndpoint(Protocol):
    """The awaitable mirror of the coordinator↔site RPC surface."""

    site_id: int

    async def prepare(self, threshold: float) -> int:
        """Local computing phase; returns |SKY(D_i)|."""

    async def pop_representative(self) -> Optional[Quaternion]:
        """To-Server phase; None once exhausted."""

    async def probe_and_prune(self, t: UncertainTuple) -> "ProbeReply":
        """Server-Delivery + Local-Pruning; returns a ProbeReply."""

    async def queue_size(self) -> int:
        """Remaining local candidates (control information)."""


class AsyncLocalEndpoint:
    """Await-shaped adapter over a synchronous :class:`SiteEndpoint`.

    Each RPC yields to the event loop (``await asyncio.sleep(0)``)
    before running the in-process call, so a service scheduling many
    sessions interleaves them at RPC granularity.  The inner call
    itself runs on the loop thread — in-process sites are compute, not
    I/O, and moving them to a thread pool would only add overhead and
    nondeterminism.
    """

    def __init__(self, inner: SiteEndpoint) -> None:
        self.inner = inner
        self.site_id = inner.site_id

    async def prepare(self, threshold: float) -> int:
        await asyncio.sleep(0)
        return self.inner.prepare(threshold)  # skylint: ignore[SKY601] in-process site: compute on the loop by design (see class docstring)

    async def pop_representative(self) -> Optional[Quaternion]:
        await asyncio.sleep(0)
        return self.inner.pop_representative()  # skylint: ignore[SKY601] in-process site: compute on the loop by design (see class docstring)

    async def probe_and_prune(self, t: UncertainTuple) -> "ProbeReply":
        await asyncio.sleep(0)
        return self.inner.probe_and_prune(t)  # skylint: ignore[SKY601] in-process site: compute on the loop by design (see class docstring)

    async def probe_and_prune_batch(
        self, ts: Sequence[UncertainTuple]
    ) -> "BatchProbeReply":
        await asyncio.sleep(0)
        return self.inner.probe_and_prune_batch(ts)  # type: ignore[attr-defined, no-any-return]

    async def queue_size(self) -> int:
        await asyncio.sleep(0)
        return self.inner.queue_size()  # skylint: ignore[SKY601] in-process site: compute on the loop by design (see class docstring)

    def __getattr__(self, name: str) -> Any:
        # Expose everything else (update hooks, replica access, …) for
        # callers that know the inner endpoint is in-process.
        return getattr(self.inner, name)


class AsyncRemoteSiteProxy:
    """:class:`AsyncSiteEndpoint` speaking the TCP protocol via asyncio.

    Wire-compatible with :class:`~repro.net.sockets.SiteServer`.
    ``timeout`` bounds connect and each request/response exchange; on
    expiry the stream position is ambiguous, so the connection is
    marked for re-dial and :class:`~repro.fault.errors.SiteTimeout` is
    raised for the coordinator's retry policy to arbitrate.  A dropped
    connection is transparently re-dialed and the RPC re-issued up to
    ``retries`` times — except ``pop_representative``, which is never
    retried (re-popping after an ambiguous failure could skip a
    candidate).
    """

    _NON_IDEMPOTENT = frozenset({"pop_representative"})

    def __init__(
        self,
        site_id: int,
        address: Tuple[str, int],
        timeout: float = 30.0,
        retries: int = 0,
    ) -> None:
        self.site_id = site_id
        self.address = address
        self.timeout = timeout
        self.retries = retries
        self.reconnects = 0
        self.timeouts = 0
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._needs_redial = False
        self._closed = False

    @classmethod
    async def connect(
        cls,
        site_id: int,
        address: Tuple[str, int],
        timeout: float = 30.0,
        retries: int = 0,
    ) -> "AsyncRemoteSiteProxy":
        """Dial the site server and return a connected proxy."""
        proxy = cls(site_id, address, timeout=timeout, retries=retries)
        await proxy._dial()
        return proxy

    async def _dial(self) -> None:
        if self._closed:
            # A closed proxy must never silently reconnect: session
            # teardown released the socket, and a late RPC re-dialing
            # here would leak a fresh connection past the owner.
            raise ConnectionError(f"proxy for site {self.site_id} is closed")
        await self._close_stream()
        try:
            self._reader, self._writer = await asyncio.wait_for(
                asyncio.open_connection(*self.address), timeout=self.timeout
            )
        except asyncio.TimeoutError as exc:
            self.timeouts += 1
            raise SiteTimeout(
                self.site_id, f"no connection within {self.timeout}s"
            ) from exc
        self._needs_redial = False

    async def _close_stream(self) -> None:
        writer, self._reader, self._writer = self._writer, None, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _exchange(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        assert self._reader is not None and self._writer is not None
        raw = json.dumps(payload).encode("utf-8")
        self._writer.write(_LENGTH.pack(len(raw)) + raw)
        await self._writer.drain()
        header = await self._reader.readexactly(_LENGTH.size)
        (length,) = _LENGTH.unpack(header)
        body = await self._reader.readexactly(length)
        return dict(json.loads(body.decode("utf-8")))

    async def _call(self, method: str, **kwargs: Any) -> Any:
        if self._closed:
            raise ConnectionError(f"proxy for site {self.site_id} is closed")
        attempts = 1 + (0 if method in self._NON_IDEMPOTENT else self.retries)
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            try:
                if attempt > 0 or self._needs_redial or self._writer is None:
                    await self._dial()
                    if attempt > 0:
                        self.reconnects += 1
                response = await asyncio.wait_for(
                    self._exchange({"method": method, **kwargs}),
                    timeout=self.timeout,
                )
                if not response["ok"]:
                    # An application error is authoritative — no retry.
                    raise RuntimeError(
                        f"site {self.site_id} RPC failed: {response['error']}"
                    )
                return response["result"]
            except asyncio.TimeoutError as exc:
                # A late reply may still be in flight; the stream is
                # unusable until re-dialed.  Escalate immediately.
                self.timeouts += 1
                self._needs_redial = True
                raise SiteTimeout(
                    self.site_id,
                    f"no answer to {method!r} within {self.timeout}s",
                ) from exc
            except asyncio.IncompleteReadError as exc:
                self._needs_redial = True
                last_error = ConnectionError(
                    f"site {self.site_id} closed the connection"
                )
                last_error.__cause__ = exc
            except (ConnectionError, OSError) as exc:
                self._needs_redial = True
                last_error = exc
        assert last_error is not None
        raise last_error

    async def prepare(self, threshold: float) -> int:
        return int(await self._call("prepare", threshold=threshold))

    async def pop_representative(self) -> Optional[Quaternion]:
        result = await self._call("pop_representative")
        return None if result is None else Quaternion.from_dict(result)

    async def probe_and_prune(self, t: UncertainTuple) -> "ProbeReply":
        from ..distributed.site import ProbeReply

        result = await self._call("probe_and_prune", tuple=encode_tuple(t))
        return ProbeReply(
            factor=float(result["factor"]),
            pruned=int(result["pruned"]),
            queue_remaining=int(result["queue_remaining"]),
        )

    async def probe_and_prune_batch(
        self, ts: Sequence[UncertainTuple]
    ) -> "BatchProbeReply":
        from ..distributed.site import BatchProbeReply

        result = await self._call(
            "probe_and_prune_batch", tuples=[encode_tuple(t) for t in ts]
        )
        return BatchProbeReply(
            factors=[float(f) for f in result["factors"]],
            pruned=int(result["pruned"]),
            queue_remaining=int(result["queue_remaining"]),
        )

    async def queue_size(self) -> int:
        return int(await self._call("queue_size"))

    async def ship_all(self) -> List[UncertainTuple]:
        return [decode_tuple(d) for d in await self._call("ship_all")]

    async def ship_local_skyline(self, threshold: float) -> List[Quaternion]:
        return [
            Quaternion.from_dict(d)
            for d in await self._call("ship_local_skyline", threshold=threshold)
        ]

    async def ping(self) -> bool:
        return bool(await self._call("ping") == "pong")

    async def close(self) -> None:
        """Release the connection; idempotent, and final.

        Waits for the transport to actually close (``wait_closed``
        inside :meth:`_close_stream`), so rapid session churn cannot
        accumulate half-open sockets, and flags the proxy so a
        straggling RPC cannot silently re-dial afterwards.
        """
        self._closed = True
        await self._close_stream()


async def connect_async_sites(
    addresses: Sequence[Tuple[int, Tuple[str, int]]],
    timeout: float = 30.0,
    retries: int = 0,
) -> List[AsyncRemoteSiteProxy]:
    """Dial many site servers concurrently (one proxy per address).

    ``addresses`` is ``(site_id, (host, port))`` pairs.  Dials overlap
    — the whole fan-out costs one round trip — and on any failure the
    proxies already connected are closed before the error propagates.
    """
    results = await asyncio.gather(
        *(
            AsyncRemoteSiteProxy.connect(
                site_id, address, timeout=timeout, retries=retries
            )
            for site_id, address in addresses
        ),
        return_exceptions=True,
    )
    failure: Optional[BaseException] = None
    proxies: List[AsyncRemoteSiteProxy] = []
    for item in results:
        if isinstance(item, AsyncRemoteSiteProxy):
            proxies.append(item)
        elif failure is None:
            failure = item
    if failure is not None:
        for proxy in proxies:
            try:
                await proxy.close()
            except (ConnectionError, OSError):
                # Best-effort cleanup: one endpoint refusing to close
                # must not leak the rest of the fan-out.
                continue
        raise failure
    return proxies

"""A real TCP transport for the coordinator↔site protocol.

The experiments run in-process (bandwidth accounting is exact either
way), but a reproduction of a *distributed* system should also actually
run distributed.  This module hosts each :class:`LocalSite` behind a
TCP server and exposes a :class:`RemoteSiteProxy` implementing the same
:class:`~repro.net.transport.SiteEndpoint` surface over the wire, so
any coordinator runs unchanged against real sockets — see
``examples/sensor_fusion_live.py`` and the transport integration tests.

Framing is a 4-byte big-endian length prefix followed by a UTF-8 JSON
document; payload encoding reuses :mod:`repro.net.message` so the wire
format and the accounting model describe the same objects.
"""

from __future__ import annotations

import json
import multiprocessing
import socket
import socketserver
import struct
import threading
import time
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from ..core.dominance import Preference
from ..core.tuples import UncertainTuple
from ..fault.errors import SiteTimeout

if TYPE_CHECKING:  # typing only — net must not import distributed at runtime
    from ..distributed.site import BatchProbeReply, LocalSite, ProbeReply, SiteConfig
from .message import Quaternion, decode_tuple, encode_tuple

__all__ = [
    "SiteServer",
    "RemoteSiteProxy",
    "host_sites",
    "SiteCluster",
    "ProcessSiteCluster",
    "host_sites_in_processes",
]

_LENGTH = struct.Struct(">I")


def _send_frame(sock: socket.socket, payload: Dict[str, Any]) -> None:
    raw = json.dumps(payload).encode("utf-8")
    sock.sendall(_LENGTH.pack(len(raw)) + raw)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            return None
        buf += chunk
    return buf


def _recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    body = _recv_exact(sock, length)
    if body is None:
        return None
    return json.loads(body.decode("utf-8"))


class _SiteRequestHandler(socketserver.BaseRequestHandler):
    """Serves RPCs against the hosted LocalSite until the peer hangs up."""

    def handle(self) -> None:
        site = self.server.session_site()  # type: ignore[attr-defined]
        delay = getattr(self.server, "rpc_delay", 0.0)
        while True:
            request = _recv_frame(self.request)
            if request is None:
                return
            try:
                if delay > 0.0:
                    # Simulated WAN service time, applied before the
                    # dispatch so it covers cache hits too.
                    time.sleep(delay)
                result = self._dispatch(site, request)
                _send_frame(self.request, {"ok": True, "result": result})
            except Exception as exc:  # surfaced to the caller, not swallowed
                _send_frame(self.request, {"ok": False, "error": repr(exc)})

    @staticmethod
    def _dispatch(site: "LocalSite", request: Dict[str, Any]) -> Any:
        method = request["method"]
        if method == "prepare":
            return site.prepare(float(request["threshold"]))
        if method == "pop_representative":
            quaternion = site.pop_representative()
            return None if quaternion is None else quaternion.to_dict()
        if method == "probe_and_prune":
            reply = site.probe_and_prune(decode_tuple(request["tuple"]))
            return {
                "factor": reply.factor,
                "pruned": reply.pruned,
                "queue_remaining": reply.queue_remaining,
            }
        if method == "probe_and_prune_batch":
            reply = site.probe_and_prune_batch(
                [decode_tuple(d) for d in request["tuples"]]
            )
            return {
                "factors": list(reply.factors),
                "pruned": reply.pruned,
                "queue_remaining": reply.queue_remaining,
            }
        if method == "queue_size":
            return site.queue_size()
        if method == "ship_all":
            return [encode_tuple(t) for t in site.ship_all()]
        if method == "ship_local_skyline":
            return [
                q.to_dict() for q in site.ship_local_skyline(float(request["threshold"]))
            ]
        if method == "ping":
            return "pong"
        raise ValueError(f"unknown RPC method {method!r}")


class SiteServer(socketserver.ThreadingTCPServer):
    """Hosts one LocalSite on a TCP port (127.0.0.1, ephemeral by default).

    By default every connection shares the one hosted site — the
    historical single-query behaviour.  ``fork_per_connection`` makes
    the hosted site a *template*: each connection is served by a fresh
    :meth:`LocalSite.fork`, so many concurrent query sessions get
    independent queue/feedback state over the same partition (the
    remote twin of :class:`repro.serve.sites.SharedSiteHost`).  Enable
    the template's skyline cache first so forks amortise the local
    computing phase.  ``rpc_delay`` adds a per-RPC service-time sleep —
    a deterministic stand-in for WAN latency, used by the serving
    bench to make socket-wait overlap measurable on localhost.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        site: "LocalSite",
        host: str = "127.0.0.1",
        port: int = 0,
        fork_per_connection: bool = False,
        rpc_delay: float = 0.0,
    ) -> None:
        super().__init__((host, port), _SiteRequestHandler)
        self.site = site
        self.fork_per_connection = fork_per_connection
        self.rpc_delay = rpc_delay
        self.forks_served = 0

    def session_site(self) -> "LocalSite":
        """The site one incoming connection should talk to."""
        if not self.fork_per_connection:
            return self.site
        self.forks_served += 1
        return self.site.fork()

    @property
    def address(self) -> Tuple[str, int]:
        return self.server_address  # type: ignore[return-value]

    def serve_in_thread(self) -> threading.Thread:
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread


class RemoteSiteProxy:
    """SiteEndpoint implementation speaking the TCP protocol.

    ``timeout`` is a *real* socket deadline applied to connect, send,
    and receive: a site that accepts the connection but never answers
    surfaces as :class:`~repro.fault.errors.SiteTimeout` after
    ``timeout`` seconds instead of hanging the query.  Timeouts are
    never retried here — whether the lost answer is worth another
    round trip is the coordinator's :class:`RetryPolicy` decision, and
    after a timeout the stream position is ambiguous anyway, so the
    connection is re-dialed before any further use.

    ``retries`` controls transparent reconnection: a dropped connection
    (transient network fault, site restart behind the same address) is
    re-dialed and the *idempotent* RPC re-issued up to that many times.
    Every protocol method is safe to retry except ``pop_representative``
    — re-popping after an ambiguous failure could skip a candidate — so
    that one is never retried and an ambiguous drop surfaces as
    :class:`ConnectionError` for the coordinator to handle.
    """

    _NON_IDEMPOTENT = frozenset({"pop_representative"})

    def __init__(
        self,
        site_id: int,
        address: Tuple[str, int],
        timeout: float = 30.0,
        retries: int = 0,
    ) -> None:
        self.site_id = site_id
        self.address = address
        self.timeout = timeout
        self.retries = retries
        self.reconnects = 0
        self.timeouts = 0
        self._sock = socket.create_connection(address, timeout=timeout)
        self._needs_redial = False

    def _reconnect(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass
        self._sock = socket.create_connection(self.address, timeout=self.timeout)
        self._needs_redial = False
        self.reconnects += 1

    def _call(self, method: str, **kwargs: Any) -> Any:
        attempts = 1 + (0 if method in self._NON_IDEMPOTENT else self.retries)
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            try:
                if attempt > 0 or self._needs_redial:
                    self._reconnect()
                _send_frame(self._sock, {"method": method, **kwargs})
                response = _recv_frame(self._sock)
                if response is None:
                    raise ConnectionError(
                        f"site {self.site_id} closed the connection"
                    )
                if not response["ok"]:
                    # An application error is authoritative — no retry.
                    raise RuntimeError(
                        f"site {self.site_id} RPC failed: {response['error']}"
                    )
                return response["result"]
            except socket.timeout as exc:
                # A late reply may still be in flight; the stream is
                # unusable until re-dialed.  Escalate immediately.
                self.timeouts += 1
                self._needs_redial = True
                raise SiteTimeout(
                    self.site_id,
                    f"no answer to {method!r} within {self.timeout}s",
                ) from exc
            except (ConnectionError, OSError) as exc:
                last_error = exc
        raise last_error  # type: ignore[misc]

    def prepare(self, threshold: float) -> int:
        return int(self._call("prepare", threshold=threshold))

    def pop_representative(self) -> Optional[Quaternion]:
        result = self._call("pop_representative")
        return None if result is None else Quaternion.from_dict(result)

    def probe_and_prune(self, t: UncertainTuple) -> "ProbeReply":
        from ..distributed.site import ProbeReply

        result = self._call("probe_and_prune", tuple=encode_tuple(t))
        return ProbeReply(
            factor=float(result["factor"]),
            pruned=int(result["pruned"]),
            queue_remaining=int(result["queue_remaining"]),
        )

    def probe_and_prune_batch(self, ts: Sequence[UncertainTuple]) -> "BatchProbeReply":
        from ..distributed.site import BatchProbeReply

        result = self._call(
            "probe_and_prune_batch", tuples=[encode_tuple(t) for t in ts]
        )
        return BatchProbeReply(
            factors=[float(f) for f in result["factors"]],
            pruned=int(result["pruned"]),
            queue_remaining=int(result["queue_remaining"]),
        )

    def queue_size(self) -> int:
        return int(self._call("queue_size"))

    def ship_all(self) -> List[UncertainTuple]:
        return [decode_tuple(d) for d in self._call("ship_all")]

    def ship_local_skyline(self, threshold: float) -> List[Quaternion]:
        return [
            Quaternion.from_dict(d)
            for d in self._call("ship_local_skyline", threshold=threshold)
        ]

    def ping(self) -> bool:
        return self._call("ping") == "pong"

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


class SiteCluster:
    """A set of locally hosted TCP sites plus proxies, with clean teardown.

    Use as a context manager::

        with host_sites(partitions, preference) as cluster:
            result = EDSUD(cluster.proxies, threshold=0.3).run()
    """

    def __init__(self, servers: List[SiteServer], proxies: List[RemoteSiteProxy]) -> None:
        self.servers = servers
        self.proxies = proxies

    def __enter__(self) -> "SiteCluster":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        for proxy in self.proxies:
            proxy.close()
        for server in self.servers:
            server.shutdown()
            server.server_close()


def host_sites(
    partitions: Sequence[Sequence[UncertainTuple]],
    preference: Optional[Preference] = None,
    site_config: "Optional[SiteConfig]" = None,
    timeout: float = 30.0,
) -> SiteCluster:
    """Spin up one TCP-hosted LocalSite per partition on localhost.

    ``timeout`` is each proxy's per-RPC socket deadline (seconds).
    """
    from ..distributed.site import LocalSite

    servers: List[SiteServer] = []
    proxies: List[RemoteSiteProxy] = []
    try:
        for i, partition in enumerate(partitions):
            site = LocalSite(
                site_id=i, database=partition, preference=preference, config=site_config
            )
            server = SiteServer(site)
            server.serve_in_thread()
            servers.append(server)
            proxies.append(
                RemoteSiteProxy(site_id=i, address=server.address, timeout=timeout)
            )
    except Exception:
        for proxy in proxies:
            proxy.close()
        for server in servers:
            server.shutdown()
            server.server_close()
        raise
    return SiteCluster(servers, proxies)


def _serve_partition_process(
    site_id: int,
    partition: Sequence[UncertainTuple],
    preference: Optional[Preference],
    site_config: "Optional[SiteConfig]",
    fork_per_connection: bool,
    rpc_delay: float,
    port_queue: "multiprocessing.Queue[int]",
) -> None:
    """Child-process entry point: host one partition until terminated."""
    from ..distributed.site import LocalSite

    site = LocalSite(
        site_id=site_id, database=partition, preference=preference, config=site_config
    )
    if fork_per_connection:
        # Standing template: one local-computing phase serves every
        # session at the same threshold, across connections.
        site.enable_skyline_cache()
    server = SiteServer(
        site, fork_per_connection=fork_per_connection, rpc_delay=rpc_delay
    )
    port_queue.put(server.address[1])
    server.serve_forever()


class ProcessSiteCluster:
    """TCP site servers in their own OS processes, with clean teardown.

    The genuinely distributed deployment: each partition lives in a
    separate Python process (own GIL, own memory), reachable only
    through the wire protocol.  ``addresses`` is ready to hand to
    :func:`repro.net.aio.connect_async_sites` or to
    :class:`RemoteSiteProxy`.
    """

    def __init__(
        self,
        processes: List[multiprocessing.Process],
        addresses: List[Tuple[int, Tuple[str, int]]],
    ) -> None:
        self.processes = processes
        self.addresses = addresses

    def __enter__(self) -> "ProcessSiteCluster":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        for process in self.processes:
            process.terminate()
        for process in self.processes:
            process.join(timeout=10.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=10.0)


def host_sites_in_processes(
    partitions: Sequence[Sequence[UncertainTuple]],
    preference: Optional[Preference] = None,
    site_config: "Optional[SiteConfig]" = None,
    fork_per_connection: bool = True,
    rpc_delay: float = 0.0,
    startup_timeout: float = 30.0,
) -> ProcessSiteCluster:
    """Spin up one site-server *process* per partition on localhost.

    Each child binds an ephemeral port and reports it back through a
    queue; the call returns once every server is accepting.  Uses the
    ``fork`` start method where available (no pickling of numpy-backed
    partitions through spawn), falling back to the platform default.
    """
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    processes: List[multiprocessing.Process] = []
    addresses: List[Tuple[int, Tuple[str, int]]] = []
    try:
        for i, partition in enumerate(partitions):
            port_queue: "multiprocessing.Queue[int]" = ctx.Queue(maxsize=1)
            process = ctx.Process(
                target=_serve_partition_process,
                args=(
                    i,
                    list(partition),
                    preference,
                    site_config,
                    fork_per_connection,
                    rpc_delay,
                    port_queue,
                ),
                daemon=True,
            )
            process.start()
            processes.append(process)
            port = port_queue.get(timeout=startup_timeout)
            addresses.append((i, ("127.0.0.1", port)))
    except Exception:
        for process in processes:
            process.terminate()
        for process in processes:
            process.join(timeout=10.0)
        raise
    return ProcessSiteCluster(processes, addresses)

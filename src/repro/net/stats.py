"""Bandwidth and latency accounting.

All the paper's efficiency figures plot *tuples transmitted over the
network*; its progressiveness figures add CPU runtime.  This module
keeps those books:

* :class:`NetworkStats` counts messages and tuple-transmissions by
  :class:`~repro.net.message.MessageKind` and direction, and — given a
  :class:`LatencyModel` — accumulates a simulated wall-clock in which
  broadcasts to many sites proceed in parallel (one round-trip of
  latency, summed serialisation time).
* :class:`ProgressEvent` / :class:`ProgressLog` record the timeline of
  reported skyline results (the x-axis of Figs. 12–13) against
  cumulative bandwidth, CPU time, and simulated network time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List

from .message import Message, MessageKind

__all__ = ["LatencyModel", "NetworkStats", "ProgressEvent", "ProgressLog"]


@dataclass(frozen=True)
class LatencyModel:
    """A simple wide-area cost model for the simulated clock.

    ``round_latency`` is the one-way latency of a communication round;
    ``per_tuple`` the serialisation/transfer cost of each tuple in it.
    Defaults sketch a WAN: 25 ms rounds, 0.1 ms per tuple.
    """

    round_latency: float = 0.025
    per_tuple: float = 0.0001

    def round_cost(self, tuples: int) -> float:
        return self.round_latency + self.per_tuple * tuples


@dataclass
class NetworkStats:
    """Counters for one algorithm run."""

    latency_model: LatencyModel = field(default_factory=LatencyModel)
    messages: int = 0
    tuples_transmitted: int = 0
    tuples_to_server: int = 0
    tuples_from_server: int = 0
    rounds: int = 0
    simulated_time: float = 0.0
    by_kind: Dict[str, int] = field(default_factory=dict)
    #: Fault-tolerance books (all zero on a healthy run): RPC attempts
    #: that failed, retries issued (with their cumulative backoff),
    #: sites declared DOWN / reintegrated, and the observed
    #: coordinator→site round-trip wall clock.
    rpc_failures: int = 0
    rpc_retries: int = 0
    backoff_seconds: float = 0.0
    sites_lost: int = 0
    sites_recovered: int = 0
    rpc_calls: int = 0
    rpc_seconds: float = 0.0
    #: Replication books: queries re-targeted from a dead primary to a
    #: live replica, and primaries resumed as target after re-sync.
    failovers: int = 0
    failbacks: int = 0

    def record(self, message: Message) -> None:
        """Account one message (direction inferred from the receiver)."""
        self.messages += 1
        self.by_kind[message.kind.value] = self.by_kind.get(message.kind.value, 0) + 1
        if message.tuple_count:
            self.tuples_transmitted += message.tuple_count
            if message.receiver == "server":
                self.tuples_to_server += message.tuple_count
            else:
                self.tuples_from_server += message.tuple_count

    def record_round(self, tuples_in_round: int = 0) -> None:
        """Advance the simulated clock by one parallel communication round."""
        self.rounds += 1
        self.simulated_time += self.latency_model.round_cost(tuples_in_round)

    def record_rpc_time(self, seconds: float) -> None:
        """One coordinator→site round trip's observed wall clock."""
        self.rpc_calls += 1
        self.rpc_seconds += seconds

    def record_retry(self, backoff: float) -> None:
        self.rpc_retries += 1
        self.backoff_seconds += backoff

    def record_failure(self) -> None:
        self.rpc_failures += 1

    def mean_rpc_seconds(self) -> float:
        return self.rpc_seconds / self.rpc_calls if self.rpc_calls else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "messages": self.messages,
            "tuples_transmitted": self.tuples_transmitted,
            "tuples_to_server": self.tuples_to_server,
            "tuples_from_server": self.tuples_from_server,
            "rounds": self.rounds,
            "simulated_time": self.simulated_time,
            "rpc_failures": self.rpc_failures,
            "rpc_retries": self.rpc_retries,
            "backoff_seconds": self.backoff_seconds,
            "sites_lost": self.sites_lost,
            "sites_recovered": self.sites_recovered,
            "failovers": self.failovers,
            "failbacks": self.failbacks,
        }


@dataclass(frozen=True)
class ProgressEvent:
    """One reported skyline result and the cost paid up to that moment."""

    result_index: int
    key: int
    global_probability: float
    tuples_transmitted: int
    cpu_seconds: float
    simulated_time: float


@dataclass
class ProgressLog:
    """The progressiveness timeline of one run (Figs. 12–13 raw data)."""

    events: List[ProgressEvent] = field(default_factory=list)
    _cpu_start: float = field(default_factory=time.process_time)

    def restart_clock(self) -> None:
        self._cpu_start = time.process_time()

    def cpu_elapsed(self) -> float:
        return time.process_time() - self._cpu_start

    def report(self, key: int, probability: float, stats: NetworkStats) -> None:
        self.events.append(
            ProgressEvent(
                result_index=len(self.events) + 1,
                key=key,
                global_probability=probability,
                tuples_transmitted=stats.tuples_transmitted,
                cpu_seconds=self.cpu_elapsed(),
                simulated_time=stats.simulated_time,
            )
        )

    def bandwidth_series(self) -> List[int]:
        """Cumulative tuples at each reported result (Figs. 12a/12b)."""
        return [e.tuples_transmitted for e in self.events]

    def cpu_series(self) -> List[float]:
        """Cumulative CPU seconds at each reported result (Figs. 12c/12d)."""
        return [e.cpu_seconds for e in self.events]

    def __len__(self) -> int:
        return len(self.events)

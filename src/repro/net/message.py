"""Wire-level message model.

The paper measures bandwidth as *the number of tuples transmitted*;
synchronisation messages and headers are explicitly excluded (§3.2).
Every communication between the coordinator and a site is therefore
described by a :class:`Message` that knows its kind, its direction, and
— the only number the cost model cares about — how many tuples it
carries.  Scalar probe replies and next-tuple requests carry zero.

Messages also know how to serialise themselves to JSON-compatible
dicts; the TCP transport (:mod:`repro.net.sockets`) sends exactly these
dicts, so the in-process and socket paths exercise one format.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..core.tuples import UncertainTuple

__all__ = [
    "MessageKind",
    "Message",
    "Quaternion",
    "encode_tuple",
    "decode_tuple",
]


class MessageKind(enum.Enum):
    """Every message type the DSUD/e-DSUD protocol exchanges."""

    PREPARE = "prepare"                  # H → S_i : threshold + preference
    PREPARE_REPLY = "prepare_reply"      # S_i → H : local skyline size
    NEXT_REQUEST = "next_request"        # H → S_i : send your next representative
    REPRESENTATIVE = "representative"    # S_i → H : one quaternion (1 tuple)
    EXHAUSTED = "exhausted"              # S_i → H : queue empty / below q
    FEEDBACK = "feedback"                # H → S_x : broadcast tuple (1 tuple)
    PROBE_REPLY = "probe_reply"          # S_x → H : P_sky(t, D_x) scalar
    RESULT = "result"                    # H → client: qualified skyline tuple
    UPDATE = "update"                    # S_i ↔ H : §5.4 maintenance traffic
    DATA = "data"                        # S_i → H : raw tuple shipment (baselines)
    CONTROL = "control"                  # anything else bookkeeping-ish
    REPLICA_SYNC = "replica_sync"        # S_i → R_i : tuple shipment to a replica
    DIGEST = "digest"                    # H ↔ R_i : anti-entropy partition digest
    FAILOVER_PROBE = "failover_probe"    # H → R_i : replayed broadcast after failover
    SUBSCRIBE = "subscribe"              # client ↔ H ↔ S_i : standing-query (de)registration
    DELTA = "delta"                      # S_i → H : stream digest (1 tuple per new candidate)
    NOTIFY = "notify"                    # H → client: ordered ResultDelta batch
    EXPIRE = "expire"                    # S_i → H : windowed candidate departed (key only)


#: Message kinds whose payload is a tuple and therefore costs bandwidth.
_TUPLE_BEARING = {
    MessageKind.REPRESENTATIVE,
    MessageKind.FEEDBACK,
    MessageKind.UPDATE,
    MessageKind.DATA,
    MessageKind.REPLICA_SYNC,
    MessageKind.FAILOVER_PROBE,
    MessageKind.DELTA,
}


@dataclass(frozen=True)
class Quaternion:
    """The ⟨i, j, P(t_ij), P_sky(t_ij, D_i)⟩ unit shipped to the server.

    ``site`` is the origin site index ``i``; ``tuple`` carries both the
    id ``j`` (its key) and the attribute values the server needs for
    dominance tests; ``local_probability`` is the own-site skyline
    probability that orders the priority queue ``L``.
    """

    site: int
    tuple: UncertainTuple
    local_probability: float

    @property
    def key(self) -> int:
        return self.tuple.key

    @property
    def existential(self) -> float:
        return self.tuple.probability

    def to_dict(self) -> Dict[str, Any]:
        return {
            "site": self.site,
            "tuple": encode_tuple(self.tuple),
            "local_probability": self.local_probability,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Quaternion":
        return cls(
            site=int(data["site"]),
            tuple=decode_tuple(data["tuple"]),
            local_probability=float(data["local_probability"]),
        )


@dataclass(frozen=True)
class Message:
    """One directed protocol message with its bandwidth cost."""

    kind: MessageKind
    sender: str
    receiver: str
    payload: Any = None
    tuple_count: int = 0

    @classmethod
    def bearing(
        cls,
        kind: MessageKind,
        sender: str,
        receiver: str,
        payload: Any,
        tuple_count: Optional[int] = None,
    ) -> "Message":
        """Build a message, deriving the tuple count from its kind.

        ``tuple_count`` overrides the per-kind default for batched
        messages (a FEEDBACK carrying k quaternions bears k tuples —
        the paper's §3.2 metric counts tuples, not envelopes).
        """
        if tuple_count is None:
            tuple_count = 1 if kind in _TUPLE_BEARING else 0
        return cls(
            kind=kind,
            sender=sender,
            receiver=receiver,
            payload=payload,
            tuple_count=tuple_count,
        )

    def size_bytes(self, dimensionality: int = 3) -> int:
        """A wire-size estimate for capacity planning.

        The paper's metric stays tuple counts; this translation —
        8 bytes per attribute and per probability, 8 for the key, a
        16-byte envelope per message — lets the same books be read in
        bytes when sizing real links.
        """
        envelope = 16
        per_tuple = 8 * (dimensionality + 2)
        return envelope + self.tuple_count * per_tuple

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind.value,
            "sender": self.sender,
            "receiver": self.receiver,
            "payload": _encode_payload(self.payload),
            "tuple_count": self.tuple_count,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Message":
        return cls(
            kind=MessageKind(data["kind"]),
            sender=data["sender"],
            receiver=data["receiver"],
            payload=_decode_payload(data["payload"]),
            tuple_count=int(data["tuple_count"]),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, raw: str) -> "Message":
        return cls.from_dict(json.loads(raw))


def encode_tuple(t: UncertainTuple) -> Dict[str, Any]:
    return {"key": t.key, "values": list(t.values), "probability": t.probability}


def decode_tuple(data: Dict[str, Any]) -> UncertainTuple:
    return UncertainTuple(
        key=int(data["key"]),
        values=tuple(float(v) for v in data["values"]),
        probability=float(data["probability"]),
    )


def _encode_payload(payload: Any) -> Any:
    if payload is None:
        return None
    if isinstance(payload, UncertainTuple):
        return {"__type__": "tuple", **encode_tuple(payload)}
    if isinstance(payload, Quaternion):
        return {"__type__": "quaternion", **payload.to_dict()}
    if isinstance(payload, dict):
        return {"__type__": "dict", "data": {k: _encode_payload(v) for k, v in payload.items()}}
    if isinstance(payload, (list, tuple)):
        return {"__type__": "list", "data": [_encode_payload(v) for v in payload]}
    return payload


def _decode_payload(payload: Any) -> Any:
    if not isinstance(payload, dict) or "__type__" not in payload:
        return payload
    kind = payload["__type__"]
    if kind == "tuple":
        return decode_tuple(payload)
    if kind == "quaternion":
        return Quaternion.from_dict(payload)
    if kind == "dict":
        return {k: _decode_payload(v) for k, v in payload["data"].items()}
    if kind == "list":
        return [_decode_payload(v) for v in payload["data"]]
    raise ValueError(f"unknown payload tag {kind!r}")

"""Benchmark — PR-tree vs uniform grid vs linear scan on the §6.3 probe.

The probe (dominator non-occurrence product) is the hot operation of
the whole system: every broadcast triggers m−1 of them.  These benches
price the three substrates a site can run on and pin the qualitative
expectations: both indexes beat the scan comfortably at probe time;
the grid's flat structure makes it competitive at low dimensionality
while the PR-tree generalises better.
"""

import pytest

from repro.core.probability import non_occurrence_product
from repro.data.workload import make_synthetic_workload
from repro.index.grid import GridIndex
from repro.index.prtree import PRTree

N = 6_000
PROBES = 150


@pytest.fixture(scope="module")
def database():
    return make_synthetic_workload(
        "independent", n=N, d=3, sites=1, seed=13
    ).global_database


@pytest.fixture(scope="module")
def probe_targets(database):
    return database[:: max(1, N // PROBES)]


def probe_all(index, targets):
    total = 0.0
    for t in targets:
        total += index.dominators_product(t)
    return total


def test_probe_prtree(benchmark, database, probe_targets):
    tree = PRTree.build(database)
    total = benchmark(probe_all, tree, probe_targets)
    assert total >= 0.0


@pytest.mark.parametrize("cells", [8, 16, 32])
def test_probe_grid(benchmark, database, probe_targets, cells):
    grid = GridIndex.build(database, cells_per_dim=cells)
    total = benchmark(probe_all, grid, probe_targets)
    benchmark.extra_info["cells_per_dim"] = cells
    assert total >= 0.0


def test_probe_linear_scan(benchmark, database, probe_targets):
    def scan_all():
        total = 0.0
        for t in probe_targets:
            total += non_occurrence_product(t, database)
        return total

    total = benchmark(scan_all)
    assert total >= 0.0


def test_all_substrates_agree(benchmark, database, probe_targets):
    tree = PRTree.build(database)
    grid = GridIndex.build(database)

    def compare():
        for t in probe_targets[:40]:
            exact = non_occurrence_product(t, database)
            assert tree.dominators_product(t) == pytest.approx(exact, abs=1e-12)
            assert grid.dominators_product(t) == pytest.approx(exact, abs=1e-12)
        return True

    assert benchmark.pedantic(compare, rounds=1, iterations=1)


def test_build_cost_prtree(benchmark, database):
    tree = benchmark(PRTree.build, database)
    assert len(tree) == N


def test_build_cost_grid(benchmark, database):
    grid = benchmark(GridIndex.build, database)
    assert len(grid) == N

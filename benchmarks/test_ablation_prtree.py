"""Ablation — the PR-tree's non-occurrence product aggregate (§6.3+).

DESIGN.md's index optimization: storing ``∏(1 − P)`` per subtree lets
the probe consume fully-dominated subtrees in O(1).  These benchmarks
measure the probe with and without the aggregate (node accesses and
wall time) and the cost of maintaining it through updates.
"""

import pytest

from repro.core.tuples import UncertainTuple
from repro.data.workload import make_synthetic_workload
from repro.index.prtree import PRTree

N = 6_000
PROBES = 200


@pytest.fixture(scope="module")
def database():
    wl = make_synthetic_workload("independent", n=N, d=3, sites=1, seed=5)
    return wl.global_database


@pytest.fixture(scope="module")
def probe_targets(database):
    return database[:: max(1, N // PROBES)]


@pytest.mark.parametrize("store_products", [True, False], ids=["with-product", "without-product"])
def test_probe_cost(benchmark, database, probe_targets, store_products):
    tree = PRTree.build(database, store_products=store_products)

    def run_probes():
        tree.node_accesses = 0
        for t in probe_targets:
            tree.dominators_product(t)
        return tree.node_accesses

    accesses = benchmark.pedantic(run_probes, rounds=3, iterations=1)
    benchmark.extra_info["node_accesses"] = accesses
    benchmark.extra_info["probes"] = len(probe_targets)


def test_product_aggregate_reduces_node_accesses(benchmark, database, probe_targets):
    def compare():
        counts = {}
        for flag in (True, False):
            tree = PRTree.build(database, store_products=flag)
            tree.node_accesses = 0
            for t in probe_targets:
                tree.dominators_product(t)
            counts[flag] = tree.node_accesses
        return counts

    counts = benchmark.pedantic(compare, rounds=1, iterations=1)
    benchmark.extra_info["with_product"] = counts[True]
    benchmark.extra_info["without_product"] = counts[False]
    assert counts[True] < counts[False]


@pytest.mark.parametrize("store_products", [True, False], ids=["with-product", "without-product"])
def test_update_maintenance_cost(benchmark, database, store_products):
    """Aggregate upkeep is the price paid at insert/delete time."""
    tree = PRTree.build(database, store_products=store_products)
    fresh = [
        UncertainTuple(10_000_000 + i, t.values, t.probability)
        for i, t in enumerate(database[:300])
    ]

    def churn():
        for t in fresh:
            tree.add(t)
        for t in fresh:
            tree.remove(t)

    benchmark.pedantic(churn, rounds=3, iterations=1)
    assert len(tree) == N

"""Fig. 13 — progressiveness on the NYSE substitute trace.

Paper shape: same qualitative progressiveness as Fig. 12; under
Gaussian(0.5, 0.2) probabilities the run consumes no more bandwidth
than under uniform probabilities, because confident central tuples
prune more per broadcast.
"""

import pytest

from repro.data.workload import make_nyse_workload

from .conftest import SEED, run_algorithm

N = 4_000


def nyse(kind):
    return make_nyse_workload(
        n=N, sites=8, probability_kind=kind, probability_mean=0.5, seed=SEED
    )


@pytest.mark.parametrize("kind", ["uniform", "gaussian"])
@pytest.mark.parametrize("algorithm", ["dsud", "edsud"])
def test_progressive_nyse_run(benchmark, kind, algorithm):
    workload = nyse(kind)
    result = benchmark.pedantic(
        run_algorithm, args=(workload, algorithm), rounds=3, iterations=1
    )
    events = result.progress.events
    assert len(events) == result.result_count >= 1
    benchmark.extra_info["results"] = result.result_count
    benchmark.extra_info["tuples_transmitted"] = result.bandwidth
    series = result.progress.bandwidth_series()
    assert series == sorted(series)
    # First result arrives well before the run completes.
    assert events[0].tuples_transmitted <= result.bandwidth


def test_gaussian_no_costlier_than_uniform(benchmark):
    def run_pair():
        return {k: run_algorithm(nyse(k), "edsud") for k in ("uniform", "gaussian")}

    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    benchmark.extra_info["uniform_tuples"] = results["uniform"].bandwidth
    benchmark.extra_info["gaussian_tuples"] = results["gaussian"].bandwidth
    assert results["gaussian"].bandwidth <= results["uniform"].bandwidth * 1.5

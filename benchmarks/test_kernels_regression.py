"""Kernel regression benchmarks: vectorized vs scalar hot paths.

The pytest-benchmark face of ``python -m repro.bench.kernels``: times
the columnar SFS, the Eq. 9 probe kernel, and batched probe rounds at
the benchmark scale, and asserts the regression floor — the vectorized
path must stay meaningfully faster than the scalar reference.  The CLI
run (which CI executes non-blocking and uploads as
``BENCH_kernels.json``) measures the acceptance scale n=20k; this suite
keeps the same comparisons under ``pytest benchmarks/
--benchmark-only`` so a kernel regression fails loudly next to the
paper-figure benchmarks.
"""

import random

import pytest

from repro.core.kernels import ColumnStore
from repro.core.kernels import prob_skyline_sfs as columnar_sfs
from repro.core.probability import non_occurrence_product
from repro.core.prob_skyline import prob_skyline_sfs as scalar_sfs
from repro.core.tuples import UncertainTuple

from .conftest import Q, run_algorithm

N = 4_000
D = 4
PROBES = 64


def make_database(n=N, d=D, seed=101, start_key=0):
    rng = random.Random(seed)
    return [
        UncertainTuple(
            start_key + i,
            tuple(rng.random() for _ in range(d)),
            rng.random() * 0.99 + 0.01,
        )
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def database():
    return make_database()


@pytest.fixture(scope="module")
def probes():
    return make_database(n=PROBES, seed=303, start_key=10**6)


class TestSFSKernel:
    def test_vectorized_sfs(self, benchmark, database):
        answer = benchmark(columnar_sfs, database, Q)
        benchmark.extra_info["members"] = len(answer)

    def test_scalar_sfs(self, benchmark, database):
        answer = benchmark(scalar_sfs, database, Q)
        benchmark.extra_info["members"] = len(answer)

    def test_vectorized_beats_scalar(self, benchmark, database):
        """The regression floor: columnar SFS ≥ 2× the scalar at n=4k.

        (The acceptance measurement at n=20k, where the gap is far
        wider, lives in ``python -m repro.bench.kernels``.)
        """
        import time

        def compare():
            t0 = time.perf_counter()
            vec = columnar_sfs(database, Q)
            t1 = time.perf_counter()
            ref = scalar_sfs(database, Q)
            t2 = time.perf_counter()
            assert vec.agrees_with(ref, tol=1e-9)
            return t1 - t0, t2 - t1

        vec_s, ref_s = benchmark.pedantic(compare, rounds=3, iterations=1)
        benchmark.extra_info["speedup"] = ref_s / vec_s
        assert ref_s / vec_s >= 2.0


class TestProbeKernel:
    def test_vectorized_probe(self, benchmark, database, probes):
        store = ColumnStore.from_tuples(database)

        def run():
            for t in probes:
                store.dominator_product(store.project_point(t), exclude_key=t.key)

        benchmark(run)

    def test_scalar_probe(self, benchmark, database, probes):
        def run():
            for t in probes:
                non_occurrence_product(t, database)

        benchmark(run)


class TestPartitionedTable:
    def test_partitioned_build_beats_vectorized_fill(self, benchmark, database):
        """Regression floor: the output-sensitive table build ≥ 5× the
        O(n²) vectorized fill at n=4k.

        (The acceptance floor — ≥ 10× at n=100k, where the asymptotic
        gap dominates — is gated in CI from the ``--large`` artifact.)
        """
        import time

        import numpy as np

        from repro.core.partition_index import PartitionIndex

        store = ColumnStore.from_tuples(database)
        points = np.asarray(store.values, dtype=np.float64)
        keys = [t.key for t in database]

        def compare():
            t0 = time.perf_counter()
            index = PartitionIndex.build(store)
            index.refresh()
            t1 = time.perf_counter()
            baseline = store.dominator_products(points, exclude_keys=keys)
            t2 = time.perf_counter()
            assert np.max(np.abs(index.all_probabilities() - baseline)) < 1e-9
            return t1 - t0, t2 - t1

        build_s, fill_s = benchmark.pedantic(compare, rounds=3, iterations=1)
        benchmark.extra_info["speedup"] = fill_s / build_s
        assert fill_s / build_s >= 5.0


class TestArtifactSchema:
    def test_row_set_is_flag_independent(self):
        """Every flag combination emits the same (benchmark, scale) rows.

        ``--quick`` must mark skipped scales, never omit them — two
        ``BENCH_kernels.json`` artifacts are always diffable row-for-row
        regardless of the flags that produced them.
        """
        from repro.bench.kernels import expected_rows, run_kernel_bench

        doc = run_kernel_bench(quick=True)
        rows = [(r["benchmark"], r["scale"]) for r in doc["results"]]
        assert rows == expected_rows()
        skipped = [r for r in doc["results"] if r["status"] == "skipped"]
        assert skipped, "quick run must mark the scales it skips"
        for row in skipped:
            assert row["reason"]
            assert "seconds" not in "".join(row)  # markers carry no timings


class TestBatchedRounds:
    @pytest.mark.parametrize("batch_size", [1, 4])
    def test_edsud_batched(self, benchmark, independent_workload, batch_size):
        result = benchmark.pedantic(
            run_algorithm,
            args=(independent_workload, "edsud"),
            kwargs={"batch_size": batch_size},
            rounds=3,
            iterations=1,
        )
        benchmark.extra_info["rounds"] = result.stats.rounds
        benchmark.extra_info["tuples_transmitted"] = result.bandwidth

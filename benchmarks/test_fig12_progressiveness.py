"""Fig. 12 — progressiveness on synthetic data.

Paper shape: both algorithms emit their first result after a tiny
fraction of the total bandwidth/CPU; cumulative cost then grows roughly
linearly in the number of reported results, with e-DSUD's curve the
flatter of the two (fewer tuples per additional result).
"""

import pytest

from .conftest import run_algorithm


@pytest.mark.parametrize("algorithm", ["dsud", "edsud"])
@pytest.mark.parametrize("workload_name", ["independent", "anticorrelated"])
def test_progressive_run(
    benchmark, algorithm, workload_name, independent_workload, anticorrelated_workload
):
    workload = (
        independent_workload if workload_name == "independent" else anticorrelated_workload
    )
    result = benchmark.pedantic(
        run_algorithm, args=(workload, algorithm), rounds=3, iterations=1
    )
    events = result.progress.events
    assert len(events) == result.result_count >= 3
    benchmark.extra_info["first_result_tuples"] = events[0].tuples_transmitted
    benchmark.extra_info["final_tuples"] = result.bandwidth

    # Progressiveness: the first result costs a small fraction of the run.
    assert events[0].tuples_transmitted <= result.bandwidth * 0.35
    # Cumulative series are monotone.
    bandwidth_series = result.progress.bandwidth_series()
    assert bandwidth_series == sorted(bandwidth_series)
    cpu_series = result.progress.cpu_series()
    assert cpu_series == sorted(cpu_series)


def test_edsud_flatter_than_dsud(benchmark, independent_workload):
    """Average tuples per reported result — the slope of Fig. 12a."""

    def run_pair():
        return {a: run_algorithm(independent_workload, a) for a in ("dsud", "edsud")}

    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    slopes = {
        a: r.bandwidth / max(1, r.result_count) for a, r in results.items()
    }
    benchmark.extra_info["dsud_tuples_per_result"] = slopes["dsud"]
    benchmark.extra_info["edsud_tuples_per_result"] = slopes["edsud"]
    assert slopes["edsud"] <= slopes["dsud"]

"""Benchmark — two-tier topology: WAN vs LAN traffic across region sizes.

Beyond-paper extension (DESIGN.md §8): grouping sites into regions
shrinks the root's broadcast fan-out from m sites to m/region_size
endpoints, trading WAN tuples (the expensive kind) for intra-region
LAN probes.  Expected shape: WAN bandwidth falls monotonically as
regions grow; total (WAN + LAN) stays in the flat run's ballpark; the
answer never changes.
"""

import pytest

from repro.data.workload import make_synthetic_workload
from repro.distributed.edsud import EDSUD
from repro.distributed.hierarchy import build_regions
from repro.distributed.query import distributed_skyline

N = 4_000
SITES = 12
Q = 0.3


@pytest.fixture(scope="module")
def workload():
    return make_synthetic_workload("independent", n=N, d=3, sites=SITES, seed=31)


@pytest.fixture(scope="module")
def flat_result(workload):
    return distributed_skyline(workload.partitions, Q, algorithm="edsud")


@pytest.mark.parametrize("region_size", [1, 2, 3, 4, 6])
def test_region_size_sweep(benchmark, workload, flat_result, region_size):
    def run():
        regions = build_regions(workload.partitions, region_size)
        result = EDSUD(regions, Q).run()
        return result, regions

    result, regions = benchmark.pedantic(run, rounds=2, iterations=1)
    lan = sum(r.local_stats.tuples_transmitted for r in regions)
    benchmark.extra_info["wan_tuples"] = result.bandwidth
    benchmark.extra_info["lan_tuples"] = lan
    benchmark.extra_info["regions"] = len(regions)
    assert result.answer.agrees_with(flat_result.answer, tol=1e-9)


def test_wan_falls_with_region_size(benchmark, workload, flat_result):
    def sweep():
        wan = {}
        for region_size in (1, 3, 6):
            regions = build_regions(workload.partitions, region_size)
            result = EDSUD(regions, Q).run()
            wan[region_size] = result.bandwidth
        return wan

    wan = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info.update({f"wan_rs{k}": v for k, v in wan.items()})
    assert wan[6] < wan[3] < wan[1]
    assert wan[1] == flat_result.bandwidth  # degenerate regions = flat

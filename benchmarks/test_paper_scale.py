"""The paper's own scale: N = 2,000,000, m = 60 — one spot-check cell.

Skipped unless ``REPRO_PAPER_SCALE=1`` (each query takes tens of
seconds and ~1 GB of RSS; the rest of the suite should stay fast).
Measured reference on a single laptop core: generation ≈ 15 s, e-DSUD
≈ 39 s at 9,682 tuples vs DSUD 28,680, |SKY(H)| = 101, Ceiling 6,060 —
a 3× e-DSUD saving, the magnitude the paper's full-size plots show.
"""

import os

import pytest

from repro.data.workload import make_synthetic_workload

from .conftest import run_algorithm

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_PAPER_SCALE") != "1",
    reason="paper-scale run is opt-in: set REPRO_PAPER_SCALE=1",
)

N = 2_000_000
SITES = 60


@pytest.fixture(scope="module")
def paper_workload():
    return make_synthetic_workload("independent", n=N, d=3, sites=SITES, seed=1)


@pytest.mark.parametrize("algorithm", ["dsud", "edsud"])
def test_paper_scale_cell(benchmark, paper_workload, algorithm):
    result = benchmark.pedantic(
        run_algorithm, args=(paper_workload, algorithm), rounds=1, iterations=1
    )
    benchmark.extra_info["tuples_transmitted"] = result.bandwidth
    benchmark.extra_info["skyline_size"] = result.result_count
    assert result.result_count > 0
    assert result.bandwidth >= result.ceiling(SITES)


def test_paper_scale_edsud_beats_dsud(benchmark, paper_workload):
    def run_pair():
        return {a: run_algorithm(paper_workload, a) for a in ("dsud", "edsud")}

    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert results["edsud"].answer.agrees_with(results["dsud"].answer, tol=1e-9)
    # At full scale the feedback-selection advantage is large.
    assert results["edsud"].bandwidth < results["dsud"].bandwidth * 0.6

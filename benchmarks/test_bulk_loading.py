"""Benchmark — bulk-loading strategies: STR vs Hilbert vs Morton vs insert.

Measures build time and — the number that matters downstream — probe
node accesses over the resulting trees.  Expected shape: the packed
loaders beat one-at-a-time insertion on both axes; Hilbert packs at
least as tightly as Morton (curve locality); STR remains the strong
default.
"""

import pytest

from repro.data.workload import make_synthetic_workload
from repro.index.bulk import curve_bulk_load, str_bulk_load
from repro.index.prtree import PRTree
from repro.index.rtree import IndexedItem

N = 5_000
PROBES = 120


@pytest.fixture(scope="module")
def items():
    db = make_synthetic_workload("independent", n=N, d=2, sites=1, seed=23).global_database
    return [IndexedItem(t.key, t.values, t.probability, payload=t) for t in db]


@pytest.fixture(scope="module")
def probe_targets(items):
    return [it.payload for it in items[:: max(1, N // PROBES)]]


def build(strategy, items):
    tree = PRTree(max_entries=16)
    if strategy == "str":
        return str_bulk_load(tree, list(items))
    if strategy in ("hilbert", "morton"):
        return curve_bulk_load(tree, list(items), curve=strategy)
    for it in items:
        tree.insert(it)
    return tree


@pytest.mark.parametrize("strategy", ["str", "hilbert", "morton", "insert"])
def test_build_time(benchmark, items, strategy):
    tree = benchmark(build, strategy, items)
    assert len(tree) == N
    tree.check_invariants()


@pytest.mark.parametrize("strategy", ["str", "hilbert", "morton", "insert"])
def test_probe_quality(benchmark, items, probe_targets, strategy):
    tree = build(strategy, items)

    def probe_all():
        tree.node_accesses = 0
        for t in probe_targets:
            tree.dominators_product(t)
        return tree.node_accesses

    accesses = benchmark.pedantic(probe_all, rounds=3, iterations=1)
    benchmark.extra_info["node_accesses"] = accesses


def test_packed_loaders_beat_insertion(benchmark, items, probe_targets):
    def compare():
        out = {}
        for strategy in ("str", "hilbert", "insert"):
            tree = build(strategy, items)
            tree.node_accesses = 0
            for t in probe_targets:
                tree.dominators_product(t)
            out[strategy] = tree.node_accesses
        return out

    accesses = benchmark.pedantic(compare, rounds=1, iterations=1)
    benchmark.extra_info.update(accesses)
    assert accesses["str"] <= accesses["insert"]
    assert accesses["hilbert"] <= accesses["insert"]

"""Micro-benchmarks of the substrates the table/figure numbers rest on:
centralized skyline algorithms, local probabilistic skyline, PR-tree
construction, and the §6.3 probe — useful when profiling a regression
in any figure bench."""

import pytest

from repro.core.prob_skyline import prob_skyline_sfs
from repro.core.skyline import block_nested_loop, divide_and_conquer, sort_filter_skyline
from repro.data.workload import make_synthetic_workload
from repro.index.bbs import bbs_prob_skyline
from repro.index.bulk import str_bulk_load
from repro.index.prtree import PRTree
from repro.index.rtree import IndexedItem, RTree

N = 5_000


@pytest.fixture(scope="module")
def database():
    wl = make_synthetic_workload("independent", n=N, d=3, sites=1, seed=3)
    return wl.global_database


@pytest.fixture(scope="module")
def tree(database):
    return PRTree.build(database)


@pytest.mark.parametrize(
    "algorithm", [block_nested_loop, sort_filter_skyline, divide_and_conquer],
    ids=["bnl", "sfs", "dnc"],
)
def test_conventional_skyline(benchmark, database, algorithm):
    result = benchmark(algorithm, database)
    assert len(result) > 0


def test_probabilistic_skyline_sfs(benchmark, database):
    result = benchmark(prob_skyline_sfs, database, 0.3)
    assert len(result) > 0


def test_probabilistic_skyline_bbs(benchmark, database, tree):
    result = benchmark(bbs_prob_skyline, tree, 0.3)
    assert result.agrees_with(prob_skyline_sfs(database, 0.3))


def test_prtree_bulk_load(benchmark, database):
    items = [
        IndexedItem(t.key, t.values, t.probability, payload=t) for t in database
    ]

    def build():
        return str_bulk_load(PRTree(), list(items))

    tree = benchmark(build)
    assert len(tree) == N


def test_prtree_incremental_build(benchmark, database):
    sample = database[:1_000]

    def build():
        tree = PRTree()
        for t in sample:
            tree.add(t)
        return tree

    tree = benchmark(build)
    assert len(tree) == 1_000


def test_probe_throughput(benchmark, database, tree):
    targets = database[::50]

    def probe_all():
        total = 0.0
        for t in targets:
            total += tree.dominators_product(t)
        return total

    total = benchmark(probe_all)
    assert total >= 0.0

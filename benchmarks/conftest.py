"""Shared helpers for the benchmark suite.

Every module here regenerates one paper artifact (figure or table) at
the benchmark scale: large enough that the paper's qualitative shape —
who wins, by roughly what factor, where trends bend — is visible in the
reported numbers, small enough that ``pytest benchmarks/
--benchmark-only`` finishes in minutes.  The full parameter sweeps live
in ``python -m repro.bench`` (see EXPERIMENTS.md).

Workloads are generated once per session and shared; algorithms never
mutate partitions, so reuse is safe and keeps the suite fast.
"""

from __future__ import annotations

import pytest

from repro.data.workload import make_nyse_workload, make_synthetic_workload

# The benchmark scale: one order below the default harness scale.
N = 4_000
SITES = 8
DIM = 3
Q = 0.3
SEED = 77


@pytest.fixture(scope="session")
def independent_workload():
    return make_synthetic_workload("independent", n=N, d=DIM, sites=SITES, seed=SEED)


@pytest.fixture(scope="session")
def anticorrelated_workload():
    return make_synthetic_workload(
        "anticorrelated", n=N, d=DIM, sites=SITES, seed=SEED
    )


@pytest.fixture(scope="session")
def nyse_workload():
    return make_nyse_workload(n=N, sites=SITES, seed=SEED)


def run_algorithm(workload, algorithm, q=Q, **kwargs):
    from repro.distributed.query import distributed_skyline

    return distributed_skyline(
        workload.partitions, q, algorithm=algorithm,
        preference=workload.preference, **kwargs,
    )

"""Fig. 14 — update-maintenance response time, Incremental vs Naive.

Paper shape: both strategies respond in roughly stable per-update time
as the update rate grows; the incremental replica-based strategy is
decisively faster (and vastly cheaper in bandwidth) than rerunning the
query, and anticorrelated data costs more than independent because
there are more skyline members to maintain.
"""

import random

import pytest

from repro.core.tuples import UncertainTuple
from repro.data.workload import make_synthetic_workload
from repro.distributed.query import build_sites
from repro.distributed.updates import IncrementalMaintainer, NaiveMaintainer

N = 1_500
SITES = 6
Q = 0.3
UPDATES = 12


def update_script(workload, count, seed):
    rng = random.Random(seed)
    live = [list(p) for p in workload.partitions]
    key = 10_000_000
    script = []
    for _ in range(count):
        site_id = rng.randrange(workload.sites)
        if rng.random() < 0.5 and live[site_id]:
            victim = rng.choice(live[site_id])
            live[site_id].remove(victim)
            script.append(("delete", site_id, victim.key, None))
        else:
            t = UncertainTuple(
                key,
                tuple(rng.random() for _ in range(workload.dimensionality)),
                rng.random() * 0.99 + 0.01,
            )
            key += 1
            live[site_id].append(t)
            script.append(("insert", site_id, t.key, t))
    return script


def apply_script(maintainer, script):
    for op, site_id, key, t in script:
        if op == "insert":
            maintainer.insert(site_id, t)
        else:
            maintainer.delete(site_id, key)
    return maintainer


@pytest.mark.parametrize("strategy", ["incremental", "naive"])
@pytest.mark.parametrize("distribution", ["independent", "anticorrelated"])
def test_update_batch_response(benchmark, strategy, distribution):
    workload = make_synthetic_workload(
        distribution, n=N, d=3, sites=SITES, seed=42
    )
    script = update_script(workload, UPDATES, seed=43)
    cls = IncrementalMaintainer if strategy == "incremental" else NaiveMaintainer

    def run_batch():
        maintainer = cls(build_sites(workload.partitions), Q)
        return apply_script(maintainer, script)

    maintainer = benchmark.pedantic(run_batch, rounds=2, iterations=1)
    benchmark.extra_info["maintenance_tuples"] = maintainer.stats.tuples_transmitted
    benchmark.extra_info["final_skyline"] = len(maintainer.skyline())


def test_incremental_beats_naive(benchmark):
    workload = make_synthetic_workload("independent", n=N, d=3, sites=SITES, seed=44)
    script = update_script(workload, UPDATES, seed=45)

    def run_both():
        import time

        out = {}
        for name, cls in (("incremental", IncrementalMaintainer),
                          ("naive", NaiveMaintainer)):
            maintainer = cls(build_sites(workload.partitions), Q)
            start = time.perf_counter()
            apply_script(maintainer, script)
            out[name] = (time.perf_counter() - start, maintainer)
        return out

    out = benchmark.pedantic(run_both, rounds=1, iterations=1)
    inc_seconds, inc = out["incremental"]
    naive_seconds, naive = out["naive"]
    benchmark.extra_info["incremental_seconds"] = inc_seconds
    benchmark.extra_info["naive_seconds"] = naive_seconds
    # Identical maintained answers, far cheaper incremental bandwidth.
    assert inc.skyline().agrees_with(naive.skyline(), tol=1e-6)
    assert inc.stats.tuples_transmitted < naive.stats.tuples_transmitted
    assert inc_seconds < naive_seconds

"""Fig. 10 — bandwidth vs probability threshold q.

Paper shape: raising q shrinks the qualified skyline (p-skyline ⊆
p'-skyline for p ≥ p') and sharpens every pruning bound, so bandwidth
falls steeply with q for both algorithms, e-DSUD below DSUD throughout.
"""

import pytest

from .conftest import run_algorithm

THRESHOLDS = (0.3, 0.5, 0.7, 0.9)


@pytest.mark.parametrize("q", THRESHOLDS)
@pytest.mark.parametrize("algorithm", ["dsud", "edsud"])
def test_bandwidth_vs_threshold(benchmark, independent_workload, algorithm, q):
    result = benchmark.pedantic(
        run_algorithm, args=(independent_workload, algorithm), kwargs={"q": q},
        rounds=3, iterations=1,
    )
    benchmark.extra_info["tuples_transmitted"] = result.bandwidth
    benchmark.extra_info["skyline_size"] = result.result_count


def test_fig10_shape(benchmark, independent_workload, anticorrelated_workload):
    def run_sweep():
        rows = {}
        for name, wl in (("independent", independent_workload),
                         ("anticorrelated", anticorrelated_workload)):
            rows[name] = {
                q: {a: run_algorithm(wl, a, q=q) for a in ("dsud", "edsud")}
                for q in (0.3, 0.9)
            }
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    for name, by_q in rows.items():
        for algo in ("dsud", "edsud"):
            # monotone drop in bandwidth and in result count
            assert by_q[0.9][algo].bandwidth < by_q[0.3][algo].bandwidth
            assert by_q[0.9][algo].result_count <= by_q[0.3][algo].result_count
        for q in (0.3, 0.9):
            assert by_q[q]["edsud"].bandwidth <= by_q[q]["dsud"].bandwidth
            # nested answers: every 0.9-qualified tuple also 0.3-qualified
            assert set(by_q[0.9][algo].answer.keys()) <= set(
                by_q[0.3][algo].answer.keys()
            )

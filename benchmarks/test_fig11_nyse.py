"""Fig. 11 — the NYSE (real-data substitute) study, four panels.

Paper shape: (a) bandwidth grows with m and (b) falls with q, mirroring
the synthetic trends; (c) bandwidth and (d) skyline size peak around a
Gaussian probability mean of 0.5 and decline towards 0.9 — dominated
low-μ tuples fail the q = 0.3 threshold on one side, while confident
tuples resolve instantly on the other — and both algorithms return
identical skyline counts at every μ (panel d's claim).
"""

import pytest

from repro.data.workload import make_nyse_workload

from .conftest import SEED, Q, run_algorithm

N = 4_000


def nyse(sites=8, kind="uniform", mean=0.5):
    return make_nyse_workload(
        n=N, sites=sites, probability_kind=kind, probability_mean=mean, seed=SEED
    )


@pytest.mark.parametrize("m", [4, 8, 16])
def test_panel_a_bandwidth_vs_sites(benchmark, m):
    workload = nyse(sites=m)
    result = benchmark.pedantic(
        run_algorithm, args=(workload, "edsud"), rounds=3, iterations=1
    )
    benchmark.extra_info["tuples_transmitted"] = result.bandwidth


@pytest.mark.parametrize("q", [0.3, 0.6, 0.9])
def test_panel_b_bandwidth_vs_threshold(benchmark, nyse_workload, q):
    result = benchmark.pedantic(
        run_algorithm, args=(nyse_workload, "edsud"), kwargs={"q": q},
        rounds=3, iterations=1,
    )
    benchmark.extra_info["tuples_transmitted"] = result.bandwidth


@pytest.mark.parametrize("mu", [0.3, 0.5, 0.7, 0.9])
def test_panels_cd_gaussian_mean(benchmark, mu):
    workload = nyse(kind="gaussian", mean=mu)

    def run_pair():
        return {a: run_algorithm(workload, a) for a in ("dsud", "edsud")}

    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    benchmark.extra_info["dsud_bandwidth"] = results["dsud"].bandwidth
    benchmark.extra_info["edsud_bandwidth"] = results["edsud"].bandwidth
    benchmark.extra_info["skyline_size"] = results["edsud"].result_count
    # Panel d's headline: identical counts, cheaper e-DSUD.
    assert results["dsud"].result_count == results["edsud"].result_count
    assert results["edsud"].bandwidth <= results["dsud"].bandwidth


def test_fig11_shapes(benchmark):
    def run_all():
        a = {m: run_algorithm(nyse(sites=m), "edsud") for m in (4, 16)}
        b = {q: run_algorithm(nyse(), "edsud", q=q) for q in (0.3, 0.9)}
        d = {
            mu: run_algorithm(nyse(kind="gaussian", mean=mu), "edsud")
            for mu in (0.5, 0.9)
        }
        return a, b, d

    a, b, d = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert a[16].bandwidth > a[4].bandwidth           # (a) grows with m
    assert b[0.9].bandwidth < b[0.3].bandwidth        # (b) falls with q
    assert d[0.9].result_count <= d[0.5].result_count # (d) declines past 0.5

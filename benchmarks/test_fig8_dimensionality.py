"""Fig. 8 — bandwidth vs dimensionality d.

Paper shape: bandwidth of both algorithms grows with d; e-DSUD needs
considerably less than DSUD; anticorrelated data costs more than
independent; e-DSUD lands within a small factor of the Ceiling
``|SKY(H)| × m``.  Each benchmark runs one (algorithm, d) cell and the
assertions pin the between-cell relations.
"""

import pytest

from repro.data.workload import make_synthetic_workload

from .conftest import SEED, SITES, Q, run_algorithm

N = 2_500
DIMS = (2, 3, 5)


def workload_for(d, distribution="independent"):
    return make_synthetic_workload(distribution, n=N, d=d, sites=SITES, seed=SEED)


@pytest.mark.parametrize("d", DIMS)
@pytest.mark.parametrize("algorithm", ["dsud", "edsud"])
def test_bandwidth_vs_dimensionality(benchmark, algorithm, d):
    workload = workload_for(d)
    result = benchmark.pedantic(
        run_algorithm, args=(workload, algorithm), rounds=3, iterations=1
    )
    benchmark.extra_info["tuples_transmitted"] = result.bandwidth
    benchmark.extra_info["skyline_size"] = result.result_count
    benchmark.extra_info["ceiling"] = result.ceiling(SITES)
    assert result.bandwidth >= result.ceiling(SITES)


def test_fig8_shape(benchmark):
    """The full figure-8 relations at d = 2 and d = 5."""

    def run_all():
        rows = {}
        for d in (2, 5):
            wl = workload_for(d)
            rows[d] = {
                algo: run_algorithm(wl, algo) for algo in ("dsud", "edsud")
            }
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for d, row in rows.items():
        assert row["edsud"].bandwidth <= row["dsud"].bandwidth
    # bandwidth grows with dimensionality for both algorithms
    assert rows[5]["dsud"].bandwidth > rows[2]["dsud"].bandwidth
    assert rows[5]["edsud"].bandwidth > rows[2]["edsud"].bandwidth


def test_fig8_anticorrelated_costs_more(benchmark):
    """Averaged over seeds, as the paper averages 10 queries per point."""

    def run_pairs():
        totals = {"independent": [0, 0], "anticorrelated": [0, 0]}
        for seed in (SEED, SEED + 1, SEED + 2):
            for name in totals:
                wl = make_synthetic_workload(name, n=N, d=3, sites=SITES, seed=seed)
                result = run_algorithm(wl, "edsud")
                totals[name][0] += result.bandwidth
                totals[name][1] += result.result_count
        return totals

    totals = benchmark.pedantic(run_pairs, rounds=1, iterations=1)
    benchmark.extra_info["independent_tuples"] = totals["independent"][0] / 3
    benchmark.extra_info["anticorrelated_tuples"] = totals["anticorrelated"][0] / 3
    assert totals["anticorrelated"][0] > totals["independent"][0]
    assert totals["anticorrelated"][1] > totals["independent"][1]

"""Benchmark — continuous sliding-window maintenance throughput.

Not a paper figure (the paper's streams are related work); these benches
size the standing-query layer built on §5.4 maintenance: arrivals per
second under different window pressures, and the share of arrivals that
resolve without any wide-area traffic.
"""

import random

import pytest

from repro.core.tuples import UncertainTuple
from repro.distributed.streaming import DistributedStreamSkyline

SITES = 4
ARRIVALS = 300


def make_stream(seed, n=ARRIVALS, d=2):
    rng = random.Random(seed)
    return [
        UncertainTuple(
            i,
            tuple(rng.random() for _ in range(d)),
            rng.random() * 0.99 + 0.01,
        )
        for i in range(n)
    ]


#: Expected zero-traffic share: once windows fill, every arrival also
#: expires a tuple, and the §5.4 delete path must broadcast the expired
#: tuple — so a tight window caps how many arrivals can stay free.
_QUIET_FLOOR = {20: 0.15, 100: 0.6}


@pytest.mark.parametrize("window", [20, 100])
def test_arrival_throughput(benchmark, window):
    arrivals = make_stream(seed=window)
    assignment = [i % SITES for i in range(len(arrivals))]

    def run():
        stream = DistributedStreamSkyline(
            sites=SITES, window=window, threshold=0.3
        )
        for site_id, t in zip(assignment, arrivals):
            stream.arrive(site_id, t)
        return stream

    stream = benchmark.pedantic(run, rounds=2, iterations=1)
    quiet = sum(1 for e in stream.events if e.tuples_transmitted == 0)
    benchmark.extra_info["arrivals"] = len(arrivals)
    benchmark.extra_info["zero_traffic_arrivals"] = quiet
    benchmark.extra_info["maintenance_tuples"] = stream.stats.tuples_transmitted
    # The replica design's whole point: as many arrivals as the window
    # pressure allows resolve without wide-area traffic.
    assert quiet > len(arrivals) * _QUIET_FLOOR[window]


def test_stream_answer_stays_exact(benchmark):
    from repro.core.prob_skyline import prob_skyline_sfs

    arrivals = make_stream(seed=99, n=150)

    def run():
        stream = DistributedStreamSkyline(sites=SITES, window=25, threshold=0.3)
        for i, t in enumerate(arrivals):
            stream.arrive(i % SITES, t)
        return stream

    stream = benchmark.pedantic(run, rounds=1, iterations=1)
    truth = prob_skyline_sfs(stream.live_tuples(), 0.3)
    assert stream.skyline().agrees_with(truth, tol=1e-6)

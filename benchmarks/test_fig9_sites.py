"""Fig. 9 — bandwidth vs number of local sites m.

Paper shape: bandwidth of both algorithms grows with m (every feedback
costs m − 1 deliveries against a roughly fixed result set), with e-DSUD
below DSUD at every m, on both distributions.
"""

import pytest

from repro.data.workload import make_synthetic_workload

from .conftest import SEED, Q, run_algorithm

N = 3_000
SITE_COUNTS = (4, 8, 16)


def workload_for(m, distribution="independent"):
    return make_synthetic_workload(distribution, n=N, d=3, sites=m, seed=SEED)


@pytest.mark.parametrize("m", SITE_COUNTS)
@pytest.mark.parametrize("algorithm", ["dsud", "edsud"])
def test_bandwidth_vs_sites(benchmark, algorithm, m):
    workload = workload_for(m)
    result = benchmark.pedantic(
        run_algorithm, args=(workload, algorithm), rounds=3, iterations=1
    )
    benchmark.extra_info["tuples_transmitted"] = result.bandwidth
    benchmark.extra_info["sites"] = m
    assert result.result_count > 0


@pytest.mark.parametrize("distribution", ["independent", "anticorrelated"])
def test_fig9_shape(benchmark, distribution):
    def run_sweep():
        out = {}
        for m in (4, 16):
            wl = workload_for(m, distribution)
            out[m] = {a: run_algorithm(wl, a) for a in ("dsud", "edsud")}
        return out

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    # same data, same answer, regardless of partitioning width
    assert rows[4]["dsud"].result_count == rows[16]["dsud"].result_count
    # more sites -> more bandwidth; e-DSUD <= DSUD throughout
    for algo in ("dsud", "edsud"):
        assert rows[16][algo].bandwidth > rows[4][algo].bandwidth
    for m in (4, 16):
        assert rows[m]["edsud"].bandwidth <= rows[m]["dsud"].bandwidth

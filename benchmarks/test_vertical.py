"""Benchmark — the §8 future-work algorithm (vertical partitioning).

Not a paper figure (the paper leaves vertical partitioning open); these
benches size the TA-style coordinator's three phases and pin the
efficiency property that justifies it: on data with confident leaders
the probabilistic stopping bound halts sorted access long before the
columns are exhausted.
"""

import pytest

from repro.core.prob_skyline import prob_skyline_sfs
from repro.data.workload import make_synthetic_workload
from repro.distributed.vertical import vertical_skyline

N = 3_000


def workload(distribution, seed=21):
    return make_synthetic_workload(distribution, n=N, d=3, sites=1, seed=seed)


@pytest.mark.parametrize("distribution", ["independent", "correlated", "anticorrelated"])
def test_vertical_query(benchmark, distribution):
    db = workload(distribution).global_database

    def run():
        return vertical_skyline(db, 0.3)

    answer, stats = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["sorted_accesses"] = stats.sorted_accesses
    benchmark.extra_info["random_accesses"] = stats.random_accesses
    benchmark.extra_info["dominator_entries"] = stats.dominator_entries
    benchmark.extra_info["answer_size"] = len(answer)
    assert answer.agrees_with(prob_skyline_sfs(db, 0.3))


def test_early_stop_on_correlated_data(benchmark):
    db = workload("correlated").global_database

    def run():
        return vertical_skyline(db, 0.3)

    _, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    # Correlated data surfaces dominating leaders immediately; sorted
    # access must stop far below the d * N exhaustion ceiling.
    assert stats.sorted_accesses < 3 * N * 0.5


def test_vertical_vs_horizontal_entry_cost(benchmark):
    """Contrast with e-DSUD at the paper's tuple≙d-entries exchange rate."""
    from repro.distributed.query import distributed_skyline

    wl = make_synthetic_workload("independent", n=N, d=3, sites=3, seed=22)

    def run_both():
        answer, stats = vertical_skyline(wl.global_database, 0.3)
        horizontal = distributed_skyline(wl.partitions, 0.3, algorithm="edsud")
        return stats, horizontal

    stats, horizontal = benchmark.pedantic(run_both, rounds=1, iterations=1)
    benchmark.extra_info["vertical_entries"] = stats.total_entries
    benchmark.extra_info["horizontal_entries"] = horizontal.bandwidth * 3
    # No assertion on which wins — the architectures trade random access
    # against broadcasts — but both must be finite and recorded.
    assert stats.total_entries > 0 and horizontal.bandwidth > 0

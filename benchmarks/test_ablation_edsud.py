"""Ablation — which e-DSUD ingredient buys which share of the win.

DESIGN.md calls out three feedback-policy choices: Corollary-2 ordering
(vs DSUD's local ordering), eager server-side expunge, and eager bound
refresh; plus the beyond-paper probe-factor reuse.  Each benchmark runs
one variant on identical data, so comparing `tuples_transmitted` across
rows reads as the ablation table.
"""

import pytest

from repro.distributed.edsud import EDSUDConfig

from .conftest import run_algorithm

VARIANTS = {
    "dsud-anchor": ("dsud", None),
    "edsud-paper": ("edsud", EDSUDConfig()),
    "edsud-no-expunge": ("edsud", EDSUDConfig(server_expunge=False)),
    "edsud-lazy-bounds": ("edsud", EDSUDConfig(eager_bound_refresh=False)),
    "edsud-reuse-factors": ("edsud", EDSUDConfig(reuse_probe_factors=True)),
}


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_variant(benchmark, anticorrelated_workload, variant):
    algorithm, config = VARIANTS[variant]
    kwargs = {"edsud_config": config} if config is not None else {}
    result = benchmark.pedantic(
        run_algorithm, args=(anticorrelated_workload, algorithm), kwargs=kwargs,
        rounds=3, iterations=1,
    )
    benchmark.extra_info["tuples_transmitted"] = result.bandwidth
    benchmark.extra_info["iterations"] = result.iterations


def test_ablation_relations(benchmark, anticorrelated_workload):
    def run_all():
        out = {}
        for name, (algorithm, config) in VARIANTS.items():
            kwargs = {"edsud_config": config} if config is not None else {}
            out[name] = run_algorithm(anticorrelated_workload, algorithm, **kwargs)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    answers = list(results.values())
    for other in answers[1:]:
        assert answers[0].answer.agrees_with(other.answer, tol=1e-9)
    # The paper configuration beats the DSUD anchor...
    assert results["edsud-paper"].bandwidth <= results["dsud-anchor"].bandwidth
    # ...and the beyond-paper factor reuse never costs bandwidth.
    assert (
        results["edsud-reuse-factors"].bandwidth
        <= results["edsud-paper"].bandwidth
    )

#!/usr/bin/env python
"""The paper's §5.3 worked example: a three-city hotel booking system.

Sites in Qingdao, Shanghai, and Xiamen each hold uncertain hotel
records (price, distance-to-beach, confidence).  A customer asks for
the global skyline with quality threshold q = 0.3.  This script runs
e-DSUD on exactly the Table 2 data — in the §5.3 trace mode, where
dead candidates linger at the server instead of being expunged — and
narrates each protocol phase so the run can be followed against the
paper's Tables 2a–2h.

Run:  python examples/hotel_booking.py
"""

from repro import EDSUD, EDSUDConfig, LocalSite, UncertainTuple
from repro.net.transport import RecordingEndpoint

Q = 0.3

# Table 2a — (price, distance, existential probability); keys encode
# site and position.  The paper's table lists each candidate's *local
# skyline probability* (e.g. 0.65 for the (6, 6) hotel), which implies
# unlisted low-confidence records dominating it; the fillers below are
# engineered so every quaternion the protocol produces matches Table 2
# digit for digit (see tests/distributed/test_paper_example.py).
QINGDAO = [
    UncertainTuple(11, (6.0, 6.0), 0.7),
    UncertainTuple(12, (8.0, 4.0), 0.8),
    UncertainTuple(13, (3.0, 8.0), 0.8),
    # fillers: P_sky(6,6)=0.65, P_sky(8,4)=0.6, P_sky(3,8)=0.5
    UncertainTuple(14, (5.9, 5.9), 1.0 - 0.65 / 0.7),
    UncertainTuple(15, (7.9, 3.9), 0.25),
    UncertainTuple(16, (2.9, 7.9), 1.0 - 0.625 ** 0.5),
    UncertainTuple(17, (2.8, 7.8), 1.0 - 0.625 ** 0.5),
]
SHANGHAI = [
    UncertainTuple(21, (6.5, 7.0), 0.8),
    UncertainTuple(22, (4.0, 9.0), 0.6),
    UncertainTuple(23, (9.0, 5.0), 0.7),
    # fillers: P_sky(6.5,7)=0.65, P_sky(9,5)=0.6
    UncertainTuple(24, (6.4, 6.9), 1.0 - 0.65 / 0.8),
    UncertainTuple(25, (8.9, 4.9), 1.0 - 0.6 / 0.7),
]
XIAMEN = [
    UncertainTuple(31, (6.4, 7.5), 0.9),
    UncertainTuple(32, (3.5, 11.0), 0.7),
    UncertainTuple(33, (10.0, 4.5), 0.7),
    # filler: P_sky(6.4,7.5)=0.8
    UncertainTuple(34, (6.3, 7.4), 1.0 - 0.8 / 0.9),
]

CITIES = {0: "Qingdao", 1: "Shanghai", 2: "Xiamen"}


def main() -> None:
    calls = []
    sites = [
        RecordingEndpoint(LocalSite(i, db), log=calls)
        for i, db in enumerate((QINGDAO, SHANGHAI, XIAMEN))
    ]

    print("local skylines (site, |SKY(D_i)|):")
    for site in sites:
        size = site.inner.prepare(Q)
        print(f"  {CITIES[site.site_id]:<9} {size} qualified local candidates")

    # §5.3 trace mode: keep dead residents at the server (no eager
    # expunge), exactly as Tables 2b–2h show.
    coordinator = EDSUD(sites, Q, config=EDSUDConfig(server_expunge=False))
    result = coordinator.run()

    print(f"\nglobal skyline (q = {Q}):")
    for member in result.answer:
        price, dist = member.tuple.values
        city = CITIES[member.tuple.key // 10 - 1]
        print(
            f"  price={price:<5g} distance={dist:<5g} city={city:<9} "
            f"P_g-sky={member.probability:.3f}"
        )

    print(f"\n{result.summary()}")
    broadcasts = [c for c in calls if c.method == "probe_and_prune"]
    print(f"protocol trace: {len(calls)} site RPCs, "
          f"{len(broadcasts)} feedback deliveries")
    for call in broadcasts:
        t = call.args[0]
        print(
            f"  feedback ({t.values[0]:g}, {t.values[1]:g}) -> "
            f"{CITIES[call.site_id]}: factor={call.result.factor:.3f}, "
            f"pruned {call.result.pruned} local candidate(s)"
        )


if __name__ == "__main__":
    main()

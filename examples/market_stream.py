#!/usr/bin/env python
"""Continuous best-deal monitoring over live exchange streams.

The stock screener (examples/stock_screener.py) answers one-shot
queries; real trading desks watch a *stream*.  Here each exchange
center feeds its trades into a sliding window — "the last W deals per
venue" — and the standing probabilistic skyline of current best deals
updates continuously through the §5.4 incremental machinery.  The
console narrates every change the market causes, and the final tally
shows the property that makes the design viable: the overwhelming
majority of ticks never touch the wide-area network.

Run:  python examples/market_stream.py
"""

import random

from repro import UncertainTuple
from repro.core.dominance import Preference
from repro.distributed import DistributedStreamSkyline

VENUES = 4
WINDOW = 200        # deals kept per venue
TICKS = 1_200
THRESHOLD = 0.35


def tick_generator(seed):
    """An endless interleaved trade feed: (venue, deal)."""
    rng = random.Random(seed)
    price_level = [19.0 + v * 0.05 for v in range(VENUES)]  # venue spreads
    key = 0
    while True:
        venue = rng.randrange(VENUES)
        price_level[venue] *= 1.0 + rng.gauss(0.0, 0.002)
        price = round(price_level[venue] * (1.0 + rng.gauss(0, 0.004)), 2)
        volume = float(rng.choice([1, 2, 5, 10, 25, 60, 150]) * 100)
        confidence = round(min(1.0, max(0.05, rng.betavariate(6, 2))), 3)
        yield venue, UncertainTuple(key, (price, volume), confidence)
        key += 1


def main() -> None:
    preference = Preference.of("min,max")  # cheap and big
    stream = DistributedStreamSkyline(
        sites=VENUES, window=WINDOW, threshold=THRESHOLD, preference=preference
    )
    feed = tick_generator(seed=404)

    print(f"{VENUES} venues, window {WINDOW} deals/venue, q = {THRESHOLD}")
    print("streaming", TICKS, "ticks...\n")

    changes = 0
    for i in range(TICKS):
        venue, deal = feed.__next__()
        event = stream.arrive(venue, deal)
        if event.changed_answer and changes < 12:
            price, volume = deal.values
            note = []
            if event.added:
                note.append(f"+{len(event.added)}")
            if event.removed:
                note.append(f"-{len(event.removed)}")
            print(
                f"tick {i:>5}: venue {venue} ${price:<6.2f} x {int(volume):>6,} "
                f"-> skyline {' '.join(note)} "
                f"(now {len(stream.skyline())}, {event.tuples_transmitted} tuples)"
            )
        if event.changed_answer:
            changes += 1

    quiet = sum(1 for e in stream.events if e.tuples_transmitted == 0)
    print(f"\nafter {TICKS} ticks:")
    print(f"  answer changes        : {changes}")
    print(f"  zero-traffic ticks    : {quiet} ({100 * quiet / TICKS:.0f}%)")
    print(f"  maintenance bandwidth : {stream.stats.tuples_transmitted} tuples total")
    print("\ncurrent best deals:")
    for member in list(stream.skyline())[:6]:
        price, volume = member.tuple.values
        print(
            f"  ${price:>6.2f} x {int(volume):>6,}   "
            f"P_g-sky={member.probability:.3f}"
        )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Distributed sensor fusion over real TCP sockets, with subspace queries.

The paper motivates uncertain distributed data with sensor networks
whose readings carry confidence scores (§1).  This example fuses
air-quality stations spread over regional gateways: each reading is
(pm25, noise_db, power_mw) with a confidence derived from calibration
age, and an analyst wants the probabilistic skyline of the cleanest /
quietest / cheapest readings.

Unlike the other examples, the sites here are *real TCP servers* on
localhost — each gateway runs behind a socket, and the e-DSUD
coordinator talks the same protocol it would over a WAN
(:mod:`repro.net.sockets`).  The second query restricts dominance to
the (pm25, noise) subspace, the §4 extension.

Run:  python examples/sensor_fusion_live.py
"""

import random

from repro import EDSUD, Preference, UncertainTuple
from repro.net.sockets import host_sites

THRESHOLD = 0.4
GATEWAYS = 5
READINGS_PER_GATEWAY = 1_500


def generate_gateway(gateway: int, rng: random.Random) -> list:
    """Readings of one regional gateway: correlated urban conditions."""
    readings = []
    base_pollution = rng.uniform(8.0, 35.0)  # regional background pm2.5
    for i in range(READINGS_PER_GATEWAY):
        pm25 = max(1.0, rng.gauss(base_pollution, 8.0))
        # Louder districts are usually dirtier; power draw is independent.
        noise = max(30.0, rng.gauss(40.0 + pm25 * 0.6, 6.0))
        power = rng.uniform(120.0, 900.0)
        calibration_age_days = rng.expovariate(1.0 / 90.0)
        confidence = max(0.05, min(1.0, 1.0 - calibration_age_days / 400.0))
        readings.append(
            UncertainTuple(
                key=gateway * 1_000_000 + i,
                values=(round(pm25, 1), round(noise, 1), round(power, 1)),
                probability=round(confidence, 3),
            )
        )
    return readings


def show(result, label: str) -> None:
    print(f"\n{label}: {result.summary()}")
    for member in list(result.answer)[:6]:
        pm25, noise, power = member.tuple.values
        gateway = member.tuple.key // 1_000_000
        print(
            f"  gateway {gateway}: pm2.5={pm25:<5g} noise={noise:<5g} dB "
            f"power={power:<5g} mW  P_g-sky={member.probability:.3f}"
        )


def main() -> None:
    rng = random.Random(2024)
    partitions = [generate_gateway(g, rng) for g in range(GATEWAYS)]
    print(
        f"{GATEWAYS} gateways x {READINGS_PER_GATEWAY} readings, "
        f"threshold q = {THRESHOLD}"
    )

    # Full-space query over real sockets.
    with host_sites(partitions) as cluster:
        for proxy in cluster.proxies:
            assert proxy.ping()
        print(f"all {GATEWAYS} TCP site servers up "
              f"(ports {[s.address[1] for s in cluster.servers]})")
        result = EDSUD(cluster.proxies, THRESHOLD).run()
        show(result, "full-space skyline (pm2.5, noise, power)")

    # Subspace query (§4): the analyst only cares about air and noise.
    subspace = Preference(subspace=(0, 1))
    with host_sites(partitions, preference=subspace) as cluster:
        result = EDSUD(cluster.proxies, THRESHOLD, preference=subspace).run()
        show(result, "subspace skyline (pm2.5, noise)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Stock deal screener — the paper's motivating application (§1, §7.4).

A customer screens for the best deals of a stock across distributed
exchange centers.  A deal beats another when it is cheaper *and* moves
more shares, and recording errors give every deal only a probability of
being real — the exact setting of the paper's introduction.  This
script:

1. generates the synthetic NYSE trade trace (the stand-in for the
   paper's proprietary Dell data) and spreads it over exchange sites,
2. runs e-DSUD with the mixed MIN-price / MAX-volume preference,
3. shows the progressiveness timeline: how few tuples had crossed the
   network by the time each deal was reported (Fig. 13's raw data),
4. keeps the answer fresh under a stream of late-arriving and
   cancelled trades with the §5.4 incremental maintainer.

Run:  python examples/stock_screener.py
"""

import random

from repro import (
    IncrementalMaintainer,
    UncertainTuple,
    build_sites,
    distributed_skyline,
    make_nyse_workload,
)

THRESHOLD = 0.3
SITES = 8


def main() -> None:
    workload = make_nyse_workload(
        n=20_000, sites=SITES, probability_kind="gaussian",
        probability_mean=0.6, seed=11,
    )
    print(workload.describe())
    print("preference: price MIN, volume MAX\n")

    result = distributed_skyline(
        workload.partitions, THRESHOLD, algorithm="edsud",
        preference=workload.preference,
    )
    print(result.summary())
    print("\ntop deals (cheapest / largest with confidence):")
    for member in list(result.answer)[:8]:
        price, volume = member.tuple.values
        print(
            f"  ${price:>6.2f} x {int(volume):>7,} shares   "
            f"P(real)={member.tuple.probability:.2f}  "
            f"P_g-sky={member.probability:.3f}"
        )

    print("\nprogressiveness (tuples on the wire when each deal arrived):")
    for event in result.progress.events[:5]:
        print(
            f"  deal #{event.result_index}: {event.tuples_transmitted} tuples, "
            f"{event.cpu_seconds * 1000:.0f} ms CPU"
        )
    if len(result.progress.events) > 5:
        last = result.progress.events[-1]
        print(
            f"  ... deal #{last.result_index}: {last.tuples_transmitted} tuples "
            f"(query total: {result.bandwidth})"
        )

    # ------------------------------------------------------------------
    # Live maintenance: late trades arrive, some get cancelled.
    # ------------------------------------------------------------------
    print("\napplying 20 live updates (late trades + cancellations):")
    maintainer = IncrementalMaintainer(
        build_sites(workload.partitions, preference=workload.preference),
        THRESHOLD,
        workload.preference,
    )
    rng = random.Random(99)
    key = 1_000_000
    flat = [t for part in workload.partitions for t in part]
    changes = 0
    for _ in range(20):
        site_id = rng.randrange(SITES)
        if rng.random() < 0.4:
            victim = rng.choice(flat)
            flat.remove(victim)
            site_id = next(
                s.site_id for s in maintainer.sites if s.contains(victim.key)
            )
            report = maintainer.delete(site_id, victim.key)
        else:
            # A fresh aggressive deal: cheap and big, fairly confident.
            trade = UncertainTuple(
                key,
                (round(rng.uniform(14.0, 18.0), 2), float(rng.randrange(50, 400) * 100)),
                round(rng.uniform(0.4, 0.95), 2),
            )
            key += 1
            report = maintainer.insert(site_id, trade)
        if report.added or report.removed:
            changes += 1
            print(
                f"  {report.operation} key={report.key}: "
                f"+{len(report.added)} -{len(report.removed)} skyline deals, "
                f"{report.tuples_transmitted} tuples, {report.seconds * 1000:.1f} ms"
            )
    print(
        f"\n{changes} of 20 updates changed the answer; maintenance cost "
        f"{maintainer.stats.tuples_transmitted} tuples total "
        f"(vs {result.bandwidth} for one full query)."
    )
    print(f"maintained skyline now holds {len(maintainer.skyline())} deals")


if __name__ == "__main__":
    main()

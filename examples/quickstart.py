#!/usr/bin/env python
"""Quickstart: a distributed probabilistic skyline in ~30 lines.

Generates the paper's synthetic setting at laptop scale, runs all four
algorithms on identical partitions, and shows that they return the same
qualified skyline while paying very different bandwidth bills.

Run:  python examples/quickstart.py
"""

from repro import distributed_skyline, make_synthetic_workload
from repro.core import prob_skyline_sfs

THRESHOLD = 0.3


def main() -> None:
    # 8,000 anticorrelated 3-d tuples with uniform occurrence
    # probabilities, scattered over 10 sites (the paper's Table 3
    # recipe, scaled down).
    workload = make_synthetic_workload(
        distribution="anticorrelated", n=8_000, d=3, sites=10, seed=7
    )
    print(workload.describe())

    # The ground truth a centralized engine would compute.
    central = prob_skyline_sfs(workload.global_database, THRESHOLD)
    print(f"centralized answer: {len(central)} qualified tuples\n")

    print(f"{'algorithm':<22}{'|SKY(H)|':>9}{'bandwidth':>11}{'matches':>9}")
    for algorithm in ("ship-all", "naive", "dsud", "edsud"):
        result = distributed_skyline(
            workload.partitions, THRESHOLD, algorithm=algorithm
        )
        print(
            f"{result.algorithm:<22}{result.result_count:>9}"
            f"{result.bandwidth:>11}"
            f"{str(result.answer.agrees_with(central, tol=1e-7)):>9}"
        )

    result = distributed_skyline(workload.partitions, THRESHOLD, algorithm="edsud")
    print(f"\nceiling (|SKY| x m): {result.ceiling(workload.sites)} tuples")
    print("top five qualified tuples by global skyline probability:")
    for member in list(result.answer)[:5]:
        values = ", ".join(f"{v:.3f}" for v in member.tuple.values)
        print(f"  ({values})  P(t)={member.tuple.probability:.3f}  "
              f"P_g-sky={member.probability:.3f}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Vertically partitioned catalog search + top-k screening.

The paper's closing section (§8) names vertical partitioning — one
attribute column per server, as in web-source mediators — as the open
case its horizontal algorithms do not cover.  This example exercises
the library's answer to it: a laptop-price column lives on one service,
a weight column on a second, a battery-life column on a third, and the
TA-style coordinator pulls sorted entries until the *probabilistic*
stopping bound proves nothing unseen can qualify.

The second half contrasts the horizontal algorithms' top-k mode: the
buyer only wants the three most probable skyline laptops, and the
progressive coordinator stops early instead of resolving the full
answer.

Run:  python examples/vertical_catalog.py
"""

import random

from repro import UncertainTuple, distributed_skyline
from repro.core import prob_skyline_sfs
from repro.distributed.vertical import vertical_skyline

Q = 0.35
N = 4_000


def generate_catalog(n, seed):
    """Laptops: (price $, weight kg, battery-drain W) — all minimised.

    The listing confidence models stale/withdrawn offers.
    """
    rng = random.Random(seed)
    laptops = []
    for i in range(n):
        tier = rng.random()
        price = round(350 + 2200 * tier + rng.gauss(0, 120), 2)
        weight = round(max(0.8, 2.9 - 1.4 * tier + rng.gauss(0, 0.25)), 2)
        drain = round(max(4.0, 14.0 - 6.0 * tier + rng.gauss(0, 1.5)), 1)
        confidence = round(min(1.0, max(0.05, rng.betavariate(5, 2))), 3)
        laptops.append(UncertainTuple(i, (max(200.0, price), weight, drain), confidence))
    return laptops


def main() -> None:
    catalog = generate_catalog(N, seed=31)
    central = prob_skyline_sfs(catalog, Q)
    print(f"{N} listings, threshold q = {Q}; centralized answer: {len(central)}")

    # ------------------------------------------------------------------
    # Vertical partitioning: one column service per attribute.
    # ------------------------------------------------------------------
    answer, stats = vertical_skyline(catalog, Q)
    assert answer.agrees_with(central, tol=1e-9)
    print("\nvertical TA-style coordinator (one site per column):")
    print(f"  sorted accesses : {stats.sorted_accesses:>7} "
          f"(out of {3 * N} column entries)")
    print(f"  random accesses : {stats.random_accesses:>7}")
    print(f"  dominator entries: {stats.dominator_entries:>6}")
    print(f"  candidates/verified: {stats.candidates}/{stats.verified}")
    print(f"  answer matches centralized: True ({len(answer)} laptops)")

    print("\nbest verified listings:")
    for member in list(answer)[:5]:
        price, weight, drain = member.tuple.values
        print(f"  ${price:>8.2f}  {weight:4.2f} kg  {drain:4.1f} W   "
              f"P_g-sky={member.probability:.3f}")

    # ------------------------------------------------------------------
    # Horizontal top-k: only the 3 most probable skyline laptops.
    # ------------------------------------------------------------------
    partitions = [catalog[i::6] for i in range(6)]
    full = distributed_skyline(partitions, Q, algorithm="edsud")
    top3 = distributed_skyline(partitions, Q, algorithm="edsud", limit=3)
    print(f"\nhorizontal e-DSUD: full answer {full.result_count} laptops "
          f"at {full.bandwidth} tuples")
    print(f"top-3 early stop:  {top3.result_count} laptops "
          f"at {top3.bandwidth} tuples "
          f"({100 * top3.bandwidth / full.bandwidth:.0f}% of the full bill)")
    for member in top3.answer:
        price, weight, drain = member.tuple.values
        print(f"  ${price:>8.2f}  {weight:4.2f} kg  {drain:4.1f} W   "
              f"P_g-sky={member.probability:.3f}")


if __name__ == "__main__":
    main()

"""Setuptools shim enabling legacy editable installs on offline hosts without the wheel package."""
from setuptools import setup

setup()
